package tree

import (
	"fmt"

	"compactroute/internal/graph"
)

// Snapshot is the exported persistent form of a Tree: the member list
// in tree-index (BFS) order plus each member's parent as a tree index.
// All derived structure — ports, weights, DFS intervals, heavy paths,
// the by-depth order — is a deterministic function of (graph, parent
// relation), so rehydration rebuilds it identically via the Builder
// instead of storing it.
type Snapshot struct {
	Nodes   []graph.NodeID // tree index -> graph id; Nodes[0] is the root
	Parents []int32        // tree index -> parent tree index; Parents[0] = -1
}

// Snapshot captures the tree's persistent state.
func (t *Tree) Snapshot() *Snapshot {
	return &Snapshot{Nodes: t.nodes, Parents: t.parent}
}

// FromSnapshot rehydrates a Tree over g. The rebuilt tree is
// structurally identical to the captured one: Builder.Build indexes
// nodes in BFS order with children sorted by id, the same order the
// original construction used.
func FromSnapshot(g *graph.Graph, s *Snapshot) (*Tree, error) {
	if len(s.Nodes) == 0 {
		return nil, fmt.Errorf("tree: empty snapshot")
	}
	if len(s.Parents) != len(s.Nodes) {
		return nil, fmt.Errorf("tree: snapshot has %d parents for %d nodes", len(s.Parents), len(s.Nodes))
	}
	if s.Parents[0] != -1 {
		return nil, fmt.Errorf("tree: snapshot root has parent %d", s.Parents[0])
	}
	b := NewBuilder(g, s.Nodes[0])
	for i := 1; i < len(s.Nodes); i++ {
		p := s.Parents[i]
		if p < 0 || int(p) >= len(s.Nodes) {
			return nil, fmt.Errorf("tree: snapshot node %d has parent index %d out of range", i, p)
		}
		if err := b.Add(s.Nodes[i], s.Nodes[p]); err != nil {
			return nil, err
		}
	}
	t, err := b.Build()
	if err != nil {
		return nil, err
	}
	// The builder re-derives BFS order; a snapshot written by Snapshot()
	// is already in that order, so indices must agree.
	for i, id := range s.Nodes {
		if t.nodes[i] != id {
			return nil, fmt.Errorf("tree: snapshot not in canonical BFS order at index %d", i)
		}
	}
	return t, nil
}
