// Package tree implements rooted weighted trees embedded in a graph.
//
// Every routing structure in the paper lives on such trees: the
// minimum-cost path trees T(u) of §2.1, the landmark trees T(c(u,i)) of
// §3.1, and the cover trees of Lemma 6. A Tree remembers, for every
// member, the *graph ports* crossing each tree edge, so the routing
// simulators can forward messages over real edges, plus the geometric
// data the lemmas reason about (weighted depth, radius, heaviest edge)
// and the combinatorial data the routing schemes need (DFS intervals,
// heavy children, members ordered by root distance).
package tree

import (
	"fmt"
	"math"
	"sort"

	"compactroute/internal/graph"
)

// Tree is an immutable rooted tree over a subset of a graph's nodes.
// Tree indices are dense ints in [0, Len()); index 0 is the root.
type Tree struct {
	g          *graph.Graph
	nodes      []graph.NodeID // tree index -> graph id
	idx        map[graph.NodeID]int32
	parent     []int32   // tree index -> parent tree index (-1 for root)
	parentPort []int32   // graph port at node crossing to its parent
	childPort  []int32   // graph port at parent crossing to this node
	edgeW      []float64 // weight of the edge to the parent
	depth      []float64 // weighted distance from the root along the tree
	children   [][]int32
	size       []int32 // subtree sizes
	pre        []int32 // DFS preorder number
	post       []int32 // one past the largest preorder in the subtree
	heavy      []int32 // child with the largest subtree (-1 for leaves)
	byDepth    []int32 // tree indices sorted by (depth, name)
}

// Builder accumulates tree edges before freezing.
type Builder struct {
	g      *graph.Graph
	root   graph.NodeID
	parent map[graph.NodeID]graph.NodeID
}

// NewBuilder starts a tree rooted at root.
func NewBuilder(g *graph.Graph, root graph.NodeID) *Builder {
	return &Builder{g: g, root: root, parent: make(map[graph.NodeID]graph.NodeID)}
}

// Add declares that child's tree parent is parent. The two must be
// adjacent in the graph; the lightest connecting edge is used.
func (b *Builder) Add(child, parent graph.NodeID) error {
	if child == b.root {
		return fmt.Errorf("tree: root %d cannot have a parent", child)
	}
	if !b.g.Adjacent(child, parent) {
		return fmt.Errorf("tree: %d and %d are not adjacent", child, parent)
	}
	if old, ok := b.parent[child]; ok && old != parent {
		return fmt.Errorf("tree: node %d already has parent %d", child, old)
	}
	b.parent[child] = parent
	return nil
}

// Build validates and freezes the tree. Every added node must reach the
// root through parent links.
func (b *Builder) Build() (*Tree, error) {
	n := len(b.parent) + 1
	t := &Tree{
		g:          b.g,
		nodes:      make([]graph.NodeID, 0, n),
		idx:        make(map[graph.NodeID]int32, n),
		parent:     make([]int32, 0, n),
		parentPort: make([]int32, 0, n),
		childPort:  make([]int32, 0, n),
		edgeW:      make([]float64, 0, n),
		depth:      make([]float64, 0, n),
	}
	// Index nodes in BFS order from the root so parents precede
	// children; this also validates connectivity.
	kids := make(map[graph.NodeID][]graph.NodeID, n)
	for c, p := range b.parent {
		kids[p] = append(kids[p], c)
	}
	for p := range kids {
		sort.Slice(kids[p], func(i, j int) bool { return kids[p][i] < kids[p][j] })
	}
	t.push(b.root, -1, -1, -1, 0, 0)
	for qi := 0; qi < len(t.nodes); qi++ {
		u := t.nodes[qi]
		for _, c := range kids[u] {
			port := b.g.PortTo(c, u)
			e := b.g.EdgeAt(c, port)
			t.push(c, int32(qi), int32(port), int32(b.g.ReversePort(c, port)),
				e.Weight, t.depth[qi]+e.Weight)
		}
	}
	if len(t.nodes) != n {
		return nil, fmt.Errorf("tree: %d of %d nodes unreachable from root", n-len(t.nodes), n)
	}
	t.finish()
	return t, nil
}

func (t *Tree) push(id graph.NodeID, parent, parentPort, childPort int32, w, d float64) {
	t.idx[id] = int32(len(t.nodes))
	t.nodes = append(t.nodes, id)
	t.parent = append(t.parent, parent)
	t.parentPort = append(t.parentPort, parentPort)
	t.childPort = append(t.childPort, childPort)
	t.edgeW = append(t.edgeW, w)
	t.depth = append(t.depth, d)
}

// finish computes children, sizes, DFS numbering, heavy children and
// the by-depth order. Iterative to stay safe on path-shaped trees.
func (t *Tree) finish() {
	n := len(t.nodes)
	t.children = make([][]int32, n)
	for i := 1; i < n; i++ {
		p := t.parent[i]
		t.children[p] = append(t.children[p], int32(i))
	}
	t.size = make([]int32, n)
	// Nodes were pushed in BFS order, so a reverse sweep sees children
	// before parents.
	for i := n - 1; i >= 0; i-- {
		t.size[i] = 1
		for _, c := range t.children[i] {
			t.size[i] += t.size[c]
		}
	}
	t.heavy = make([]int32, n)
	for i := 0; i < n; i++ {
		t.heavy[i] = -1
		best := int32(-1)
		for _, c := range t.children[i] {
			if best < 0 || t.size[c] > t.size[best] {
				best = c
			}
		}
		t.heavy[i] = best
	}
	// DFS preorder that always descends into the heavy child first, so
	// heavy-path labels are contiguous intervals.
	t.pre = make([]int32, n)
	t.post = make([]int32, n)
	type frame struct {
		node int32
		next int // -1 = visit heavy first, then others
	}
	counter := int32(0)
	stack := []frame{{0, -1}}
	visitOrder := make([][]int32, n)
	for i := 0; i < n; i++ {
		vo := make([]int32, 0, len(t.children[i]))
		if t.heavy[i] >= 0 {
			vo = append(vo, t.heavy[i])
		}
		for _, c := range t.children[i] {
			if c != t.heavy[i] {
				vo = append(vo, c)
			}
		}
		visitOrder[i] = vo
	}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next == -1 {
			t.pre[f.node] = counter
			counter++
			f.next = 0
		}
		if f.next < len(visitOrder[f.node]) {
			c := visitOrder[f.node][f.next]
			f.next++
			stack = append(stack, frame{c, -1})
			continue
		}
		t.post[f.node] = counter
		stack = stack[:len(stack)-1]
	}
	t.byDepth = make([]int32, n)
	for i := range t.byDepth {
		t.byDepth[i] = int32(i)
	}
	sort.SliceStable(t.byDepth, func(a, b int) bool {
		i, j := t.byDepth[a], t.byDepth[b]
		if t.depth[i] != t.depth[j] {
			return t.depth[i] < t.depth[j]
		}
		return t.g.Name(t.nodes[i]) < t.g.Name(t.nodes[j])
	})
}

// FromSPT builds the full shortest-path tree of a Dijkstra result,
// restricted to its reached component.
func FromSPT(g *graph.Graph, src graph.NodeID, parent []graph.NodeID) (*Tree, error) {
	b := NewBuilder(g, src)
	for v := range parent {
		if parent[v] >= 0 {
			if err := b.Add(graph.NodeID(v), parent[v]); err != nil {
				return nil, err
			}
		}
	}
	return b.Build()
}

// FromPaths builds the union of root→target shortest paths: the
// "minimum cost path tree spanning" a target set, as used for the
// landmark trees T(c(u,i)) in §3.1. Intermediate path nodes become tree
// members too (they must store routing state for the tree to work).
func FromPaths(g *graph.Graph, src graph.NodeID, parent []graph.NodeID, targets []graph.NodeID) (*Tree, error) {
	b := NewBuilder(g, src)
	added := make(map[graph.NodeID]bool, len(targets))
	added[src] = true
	for _, v := range targets {
		for u := v; !added[u]; u = parent[u] {
			if parent[u] < 0 {
				return nil, fmt.Errorf("tree: target %d unreachable from root %d", v, src)
			}
			if err := b.Add(u, parent[u]); err != nil {
				return nil, err
			}
			added[u] = true
		}
	}
	return b.Build()
}

// Len returns the number of tree members.
func (t *Tree) Len() int { return len(t.nodes) }

// Graph returns the underlying graph.
func (t *Tree) Graph() *graph.Graph { return t.g }

// Root returns the root's graph id.
func (t *Tree) Root() graph.NodeID { return t.nodes[0] }

// Node maps a tree index to its graph id.
func (t *Tree) Node(i int) graph.NodeID { return t.nodes[i] }

// Index maps a graph id to its tree index.
func (t *Tree) Index(id graph.NodeID) (int, bool) {
	i, ok := t.idx[id]
	return int(i), ok
}

// Contains reports tree membership of a graph node.
func (t *Tree) Contains(id graph.NodeID) bool {
	_, ok := t.idx[id]
	return ok
}

// Parent returns the parent tree index of i (-1 for the root).
func (t *Tree) Parent(i int) int { return int(t.parent[i]) }

// ParentPort returns the graph port at member i crossing to its parent.
func (t *Tree) ParentPort(i int) int { return int(t.parentPort[i]) }

// ChildPort returns the graph port at i's parent crossing to i.
func (t *Tree) ChildPort(i int) int { return int(t.childPort[i]) }

// EdgeWeight returns the weight of the edge from i to its parent.
func (t *Tree) EdgeWeight(i int) float64 { return t.edgeW[i] }

// Depth returns the weighted tree distance from the root to i.
func (t *Tree) Depth(i int) float64 { return t.depth[i] }

// Children returns i's children as tree indices (do not mutate).
func (t *Tree) Children(i int) []int32 { return t.children[i] }

// SubtreeSize returns the number of members in i's subtree.
func (t *Tree) SubtreeSize(i int) int { return int(t.size[i]) }

// Heavy returns the child of i with the largest subtree, or -1.
func (t *Tree) Heavy(i int) int { return int(t.heavy[i]) }

// Pre returns i's DFS preorder number (heavy child visited first).
func (t *Tree) Pre(i int) int { return int(t.pre[i]) }

// Post returns one past the largest preorder number in i's subtree.
func (t *Tree) Post(i int) int { return int(t.post[i]) }

// InSubtree reports whether desc lies in anc's subtree.
func (t *Tree) InSubtree(anc, desc int) bool {
	return t.pre[anc] <= t.pre[desc] && t.pre[desc] < t.post[anc]
}

// ByDepth returns the tree indices sorted by (depth, name): the order
// Lemma 4 assigns primary names in (do not mutate).
func (t *Tree) ByDepth() []int32 { return t.byDepth }

// Radius returns max_u d_T(root, u), the rad(T) of Lemma 6.
func (t *Tree) Radius() float64 {
	r := 0.0
	for _, d := range t.depth {
		if d > r {
			r = d
		}
	}
	return r
}

// MaxEdge returns the heaviest tree edge weight, Lemma 6's maxE(T).
func (t *Tree) MaxEdge() float64 {
	m := 0.0
	for i := 1; i < len(t.edgeW); i++ {
		if t.edgeW[i] > m {
			m = t.edgeW[i]
		}
	}
	return m
}

// Dist returns the tree distance between two members.
func (t *Tree) Dist(a, b int) float64 {
	l := t.LCA(a, b)
	return t.depth[a] + t.depth[b] - 2*t.depth[l]
}

// LCA returns the lowest common ancestor by depth-stepping. O(depth);
// fine for verification, not used on hot routing paths.
func (t *Tree) LCA(a, b int) int {
	for a != b {
		if t.depth[a] >= t.depth[b] && a != 0 {
			a = int(t.parent[a])
		} else {
			b = int(t.parent[b])
		}
	}
	return a
}

// PathToRoot returns the tree indices from i up to the root, inclusive.
func (t *Tree) PathToRoot(i int) []int {
	var p []int
	for ; i != -1; i = int(t.parent[i]) {
		p = append(p, i)
	}
	return p
}

// Validate rechecks all structural invariants; used by tests.
func (t *Tree) Validate() error {
	n := t.Len()
	for i := 1; i < n; i++ {
		p := int(t.parent[i])
		e := t.g.EdgeAt(t.nodes[i], int(t.parentPort[i]))
		if e.To != t.nodes[p] {
			return fmt.Errorf("tree: parentPort of %d leads to %d, want %d", i, e.To, t.nodes[p])
		}
		back := t.g.EdgeAt(t.nodes[p], int(t.childPort[i]))
		if back.To != t.nodes[i] {
			return fmt.Errorf("tree: childPort of %d broken", i)
		}
		if math.Abs(t.depth[i]-(t.depth[p]+t.edgeW[i])) > 1e-9 {
			return fmt.Errorf("tree: depth of %d inconsistent", i)
		}
		if !t.InSubtree(p, i) {
			return fmt.Errorf("tree: DFS intervals broken at %d", i)
		}
	}
	return nil
}
