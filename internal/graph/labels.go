package graph

import "fmt"

// The paper's model gives nodes polylog(n)-bit names and notes that
// "using standard hashing techniques it is possible to generalize the
// model and assume nodes have arbitrarily long unique labels" (§2.1).
// This file is that generalization: string labels are hashed to 64-bit
// names (with collision probing, vanishingly rare), and the label is
// retained for display and reverse lookup. Routing itself still only
// ever sees the 64-bit name.

// hashLabel is FNV-1a, inlined to keep the package dependency-free.
func hashLabel(label string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= prime64
	}
	return h
}

// AddLabeled registers a node with an arbitrary string label, hashing
// it to the node's 64-bit name. Re-adding the same label returns the
// existing node; two distinct labels never share a name (collisions
// are resolved by probing).
func (b *Builder) AddLabeled(label string) NodeID {
	if b.labels == nil {
		b.labels = make(map[string]NodeID)
		b.labelOf = make(map[NodeID]string)
	}
	if id, ok := b.labels[label]; ok {
		return id
	}
	name := hashLabel(label)
	for {
		if _, taken := b.byName[name]; !taken {
			break
		}
		name++ // probing; astronomically rare with 64-bit FNV
	}
	id := b.AddNode(name)
	b.labels[label] = id
	b.labelOf[id] = label
	return id
}

// buildLabels transfers label maps into the built graph.
func (b *Builder) buildLabels(g *Graph) {
	if b.labels == nil {
		return
	}
	g.labels = make(map[string]NodeID, len(b.labels))
	g.labelOf = make(map[NodeID]string, len(b.labelOf))
	for l, id := range b.labels {
		g.labels[l] = id
	}
	for id, l := range b.labelOf {
		g.labelOf[id] = l
	}
}

// LookupLabel resolves a string label to its node.
func (g *Graph) LookupLabel(label string) (NodeID, bool) {
	id, ok := g.labels[label]
	return id, ok
}

// Label returns the string label of u, if it was added with
// AddLabeled.
func (g *Graph) Label(u NodeID) (string, bool) {
	l, ok := g.labelOf[u]
	return l, ok
}

// DisplayName renders u's label if present, else its numeric name.
func (g *Graph) DisplayName(u NodeID) string {
	if l, ok := g.labelOf[u]; ok {
		return l
	}
	return fmt.Sprintf("%#x", g.Name(u))
}
