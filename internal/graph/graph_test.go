package graph

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"compactroute/internal/xrand"
)

func line(t *testing.T, n int) *Graph {
	t.Helper()
	b := NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNode(uint64(1000 + i))
	}
	for i := 0; i < n-1; i++ {
		if err := b.AddEdge(NodeID(i), NodeID(i+1), float64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildEmpty(t *testing.T) {
	if _, err := NewBuilder().Build(); err != ErrEmpty {
		t.Fatalf("want ErrEmpty, got %v", err)
	}
}

func TestSingleNode(t *testing.T) {
	b := NewBuilder()
	b.AddNode(7)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 1 || g.M() != 0 || g.Degree(0) != 0 || !g.Connected() {
		t.Fatal("single node graph malformed")
	}
}

func TestAddNodeIdempotent(t *testing.T) {
	b := NewBuilder()
	a := b.AddNode(42)
	c := b.AddNode(42)
	if a != c {
		t.Fatal("duplicate name created second node")
	}
}

func TestNamesRoundTrip(t *testing.T) {
	g := line(t, 5)
	for u := NodeID(0); int(u) < g.N(); u++ {
		id, ok := g.Lookup(g.Name(u))
		if !ok || id != u {
			t.Fatalf("name round trip failed for %d", u)
		}
	}
	if _, ok := g.Lookup(999999); ok {
		t.Fatal("lookup of unknown name succeeded")
	}
}

func TestSelfLoopRejected(t *testing.T) {
	b := NewBuilder()
	b.AddNode(1)
	if err := b.AddEdge(0, 0, 1); err == nil {
		t.Fatal("self loop accepted")
	}
}

func TestBadWeightsRejected(t *testing.T) {
	b := NewBuilder()
	b.AddNode(1)
	b.AddNode(2)
	for _, w := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if err := b.AddEdge(0, 1, w); err == nil {
			t.Fatalf("weight %v accepted", w)
		}
	}
}

func TestUnknownEndpointRejected(t *testing.T) {
	b := NewBuilder()
	b.AddNode(1)
	if err := b.AddEdge(0, 5, 1); err == nil {
		t.Fatal("edge to unknown node accepted")
	}
}

func TestDegreesAndNeighbors(t *testing.T) {
	g := line(t, 4) // 0-1-2-3
	wantDeg := []int{1, 2, 2, 1}
	for u, w := range wantDeg {
		if g.Degree(NodeID(u)) != w {
			t.Fatalf("deg(%d) = %d, want %d", u, g.Degree(NodeID(u)), w)
		}
	}
	var seen []NodeID
	g.Neighbors(1, func(e Edge) bool {
		seen = append(seen, e.To)
		return true
	})
	if len(seen) != 2 {
		t.Fatalf("node 1 neighbors = %v", seen)
	}
}

func TestNeighborsEarlyStop(t *testing.T) {
	g := line(t, 4)
	count := 0
	g.Neighbors(1, func(e Edge) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestPortsRoundTrip(t *testing.T) {
	g := line(t, 6)
	for u := NodeID(0); int(u) < g.N(); u++ {
		g.Neighbors(u, func(e Edge) bool {
			back := g.ReversePort(u, e.Port)
			e2 := g.EdgeAt(e.To, back)
			if e2.To != u || e2.Weight != e.Weight {
				t.Fatalf("reverse port broken at %d port %d", u, e.Port)
			}
			return true
		})
	}
}

func TestPortTo(t *testing.T) {
	g := line(t, 3)
	p := g.PortTo(0, 1)
	if p < 0 || g.EdgeAt(0, p).To != 1 {
		t.Fatal("PortTo(0,1) wrong")
	}
	if g.PortTo(0, 2) != -1 {
		t.Fatal("PortTo for non-adjacent should be -1")
	}
	if !g.Adjacent(1, 2) || g.Adjacent(0, 2) {
		t.Fatal("Adjacent wrong")
	}
}

func TestParallelEdgesPickLightest(t *testing.T) {
	b := NewBuilder()
	b.AddNode(1)
	b.AddNode(2)
	b.AddEdge(0, 1, 5)
	b.AddEdge(0, 1, 2)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := g.PortTo(0, 1)
	if g.EdgeAt(0, p).Weight != 2 {
		t.Fatal("PortTo did not pick lightest parallel edge")
	}
	if g.M() != 2 || g.Degree(0) != 2 {
		t.Fatal("parallel edges miscounted")
	}
}

func TestMinMaxEdgeWeight(t *testing.T) {
	g := line(t, 4) // weights 1,2,3
	if g.MinEdgeWeight() != 1 || g.MaxEdgeWeight() != 3 {
		t.Fatalf("min/max = %v/%v", g.MinEdgeWeight(), g.MaxEdgeWeight())
	}
}

func TestConnectedAndComponents(t *testing.T) {
	b := NewBuilder()
	for i := 0; i < 5; i++ {
		b.AddNode(uint64(i))
	}
	b.AddEdge(0, 1, 1)
	b.AddEdge(2, 3, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.Connected() {
		t.Fatal("disconnected graph reported connected")
	}
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("components = %v", comps)
	}
	if len(comps[0]) != 2 || len(comps[1]) != 2 || len(comps[2]) != 1 {
		t.Fatalf("component sizes wrong: %v", comps)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := line(t, 5) // 0-1-2-3-4
	sg, orig, err := g.InducedSubgraph([]NodeID{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if sg.N() != 3 || sg.M() != 1 {
		t.Fatalf("subgraph n=%d m=%d", sg.N(), sg.M())
	}
	// Names preserved.
	for si, u := range orig {
		if sg.Name(NodeID(si)) != g.Name(u) {
			t.Fatal("subgraph lost names")
		}
	}
}

func TestInducedSubgraphDuplicateRejected(t *testing.T) {
	g := line(t, 3)
	if _, _, err := g.InducedSubgraph([]NodeID{1, 1}); err == nil {
		t.Fatal("duplicate induced set accepted")
	}
}

// Property: on random graphs, CSR structure is internally consistent.
func TestCSRConsistencyProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 2 + r.Intn(30)
		b := NewBuilder()
		for i := 0; i < n; i++ {
			b.AddNode(uint64(i) * 7)
		}
		edges := 0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Bool(0.3) {
					if b.AddEdge(NodeID(i), NodeID(j), 1+r.Float64()) != nil {
						return false
					}
					edges++
				}
			}
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		if g.M() != edges {
			return false
		}
		sum := 0
		for u := NodeID(0); int(u) < n; u++ {
			sum += g.Degree(u)
			ok := true
			g.Neighbors(u, func(e Edge) bool {
				// Every edge must appear symmetrically.
				if g.PortTo(e.To, u) < 0 {
					ok = false
				}
				return ok
			})
			if !ok {
				return false
			}
		}
		return sum == 2*edges
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLabeledNodes(t *testing.T) {
	b := NewBuilder()
	ny := b.AddLabeled("new-york")
	ldn := b.AddLabeled("london")
	if b.AddLabeled("new-york") != ny {
		t.Fatal("duplicate label created second node")
	}
	if err := b.AddEdge(ny, ldn, 56); err != nil {
		t.Fatal(err)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	id, ok := g.LookupLabel("london")
	if !ok || id != ldn {
		t.Fatal("label lookup failed")
	}
	if l, ok := g.Label(ny); !ok || l != "new-york" {
		t.Fatal("reverse label lookup failed")
	}
	if g.DisplayName(ny) != "new-york" {
		t.Fatal("display name wrong")
	}
	if _, ok := g.LookupLabel("paris"); ok {
		t.Fatal("phantom label resolved")
	}
	// Labeled nodes coexist with numeric names.
	num := NewBuilder()
	n1 := num.AddNode(42)
	gg, _ := num.Build()
	if gg.DisplayName(n1) != "0x2a" {
		t.Fatalf("numeric display = %s", gg.DisplayName(n1))
	}
}

func TestLabelHashingIsNameIndependent(t *testing.T) {
	// Labels hash to names; the name must not leak label ordering.
	b := NewBuilder()
	ids := make([]NodeID, 0, 50)
	for i := 0; i < 50; i++ {
		ids = append(ids, b.AddLabeled(fmt.Sprintf("host-%03d", i)))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ascending := 0
	for i := 1; i < len(ids); i++ {
		if g.Name(ids[i]) > g.Name(ids[i-1]) {
			ascending++
		}
	}
	if ascending > 40 || ascending < 9 {
		t.Fatalf("hashed names look ordered: %d/49 ascending", ascending)
	}
}
