package graph

import "fmt"

// Snapshot is the exported persistent form of a Graph: the exact CSR
// layout, names, and optional display labels. Round-tripping through a
// Snapshot reproduces the graph bit-for-bit — including port numbering,
// which routing tables reference — so a scheme serialized against a
// graph keeps routing correctly after both are rehydrated.
type Snapshot struct {
	Names   []uint64  // index -> external name
	Offsets []int32   // CSR offsets, len n+1
	Targets []NodeID  // CSR neighbor ids
	Weights []float64 // CSR edge weights
	RevPort []int32   // reverse port of each directed edge
	M       int       // number of undirected edges
	// Labels holds the optional string labels as parallel slices
	// (LabelIDs[i] carries Labels[i]), sorted by node id.
	LabelIDs []NodeID
	Labels   []string
}

// Snapshot captures the graph's persistent state.
func (g *Graph) Snapshot() *Snapshot {
	s := &Snapshot{
		Names:   g.names,
		Offsets: g.offsets,
		Targets: g.targets,
		Weights: g.weights,
		RevPort: g.revPort,
		M:       g.m,
	}
	for u := NodeID(0); int(u) < g.N(); u++ {
		if label, ok := g.Label(u); ok {
			s.LabelIDs = append(s.LabelIDs, u)
			s.Labels = append(s.Labels, label)
		}
	}
	return s
}

// FromSnapshot rehydrates a Graph, validating structural invariants so
// a corrupt or truncated snapshot fails loudly instead of routing into
// undefined behavior.
func FromSnapshot(s *Snapshot) (*Graph, error) {
	n := len(s.Names)
	if n == 0 {
		return nil, ErrEmpty
	}
	if len(s.Offsets) != n+1 {
		return nil, fmt.Errorf("graph: snapshot has %d offsets for %d nodes", len(s.Offsets), n)
	}
	total := int(s.Offsets[n])
	if len(s.Targets) != total || len(s.Weights) != total || len(s.RevPort) != total {
		return nil, fmt.Errorf("graph: snapshot arrays disagree: %d targets, %d weights, %d revports, want %d",
			len(s.Targets), len(s.Weights), len(s.RevPort), total)
	}
	if total != 2*s.M {
		return nil, fmt.Errorf("graph: snapshot has %d directed edges for m=%d", total, s.M)
	}
	if len(s.LabelIDs) != len(s.Labels) {
		return nil, fmt.Errorf("graph: snapshot has %d label ids for %d labels", len(s.LabelIDs), len(s.Labels))
	}
	g := &Graph{
		names:   s.Names,
		byName:  make(map[uint64]NodeID, n),
		offsets: s.Offsets,
		targets: s.Targets,
		weights: s.Weights,
		revPort: s.RevPort,
		m:       s.M,
	}
	for id, name := range g.names {
		if prev, dup := g.byName[name]; dup {
			return nil, fmt.Errorf("graph: snapshot repeats name %#x at nodes %d and %d", name, prev, id)
		}
		g.byName[name] = NodeID(id)
	}
	for u := 0; u < n; u++ {
		if s.Offsets[u] > s.Offsets[u+1] {
			return nil, fmt.Errorf("graph: snapshot offsets not monotone at node %d", u)
		}
	}
	for i, v := range s.Targets {
		if v < 0 || int(v) >= n {
			return nil, fmt.Errorf("graph: snapshot edge %d targets unknown node %d", i, v)
		}
	}
	// Reverse ports must point back across the same physical edge.
	for u := NodeID(0); int(u) < n; u++ {
		for i := s.Offsets[u]; i < s.Offsets[u+1]; i++ {
			v := s.Targets[i]
			rp := s.RevPort[i]
			if rp < 0 || s.Offsets[v]+rp >= s.Offsets[v+1] {
				return nil, fmt.Errorf("graph: snapshot reverse port of edge %d→%d out of range", u, v)
			}
			j := s.Offsets[v] + rp
			if s.Targets[j] != u || s.Weights[j] != s.Weights[i] {
				return nil, fmt.Errorf("graph: snapshot reverse port of edge %d→%d inconsistent", u, v)
			}
		}
	}
	if len(s.LabelIDs) > 0 {
		g.labels = make(map[string]NodeID, len(s.LabelIDs))
		g.labelOf = make(map[NodeID]string, len(s.LabelIDs))
		for i, u := range s.LabelIDs {
			if u < 0 || int(u) >= n {
				return nil, fmt.Errorf("graph: snapshot label %q on unknown node %d", s.Labels[i], u)
			}
			g.labels[s.Labels[i]] = u
			g.labelOf[u] = s.Labels[i]
		}
	}
	return g, nil
}
