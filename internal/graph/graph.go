// Package graph implements the weighted undirected network model of
// §2.1 of the paper: a graph G = (V, E, ω) with a non-negative weight
// function, n arbitrary node names, and shortest-path metric d(u,v).
//
// Internally nodes are dense indices in [0, n); externally every node
// carries an arbitrary uint64 name. The separation is load-bearing: the
// paper's model is *name-independent* routing, so routing schemes must
// never derive information from a name except through hashing, while
// the construction algorithms are free to use indices. Edges incident
// to a node are numbered by "ports" 0..deg(u)-1, the local handles a
// router uses to forward a message.
package graph

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// NodeID is a dense internal node index in [0, n).
type NodeID int32

// Edge is one endpoint's view of an incident edge.
type Edge struct {
	To     NodeID
	Weight float64
	Port   int // index of this edge in From's incidence list
}

// Graph is an immutable weighted undirected graph in CSR layout.
// Build one with a Builder.
type Graph struct {
	names   []uint64          // index -> name
	byName  map[uint64]NodeID // name -> index
	labels  map[string]NodeID // optional string labels (see labels.go)
	labelOf map[NodeID]string
	offsets []int32   // CSR offsets, len n+1
	targets []NodeID  // CSR neighbor ids
	weights []float64 // CSR edge weights
	// revPort[i] is the port of edge i as seen from its target, so a
	// router can compute the reverse port of the edge it arrived on.
	revPort []int32
	m       int // number of undirected edges
}

// Builder accumulates nodes and edges before freezing into a Graph.
type Builder struct {
	names   []uint64
	byName  map[uint64]NodeID
	labels  map[string]NodeID
	labelOf map[NodeID]string
	us      []NodeID
	vs      []NodeID
	ws      []float64
}

// NewBuilder returns an empty graph builder.
func NewBuilder() *Builder {
	return &Builder{byName: make(map[uint64]NodeID)}
}

// AddNode registers a node with the given external name and returns its
// internal id. Adding the same name twice returns the existing id.
func (b *Builder) AddNode(name uint64) NodeID {
	if id, ok := b.byName[name]; ok {
		return id
	}
	id := NodeID(len(b.names))
	b.names = append(b.names, name)
	b.byName[name] = id
	return id
}

// AddEdge adds an undirected edge between the nodes with internal ids u
// and v. Self-loops are rejected; parallel edges are allowed (the
// metric only ever uses the lightest path).
func (b *Builder) AddEdge(u, v NodeID, w float64) error {
	if u == v {
		return fmt.Errorf("graph: self-loop on node %d", u)
	}
	if int(u) >= len(b.names) || int(v) >= len(b.names) || u < 0 || v < 0 {
		return fmt.Errorf("graph: edge (%d,%d) references unknown node", u, v)
	}
	if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		return fmt.Errorf("graph: edge (%d,%d) has invalid weight %v", u, v, w)
	}
	b.us = append(b.us, u)
	b.vs = append(b.vs, v)
	b.ws = append(b.ws, w)
	return nil
}

// ErrEmpty is returned when building a graph with no nodes.
var ErrEmpty = errors.New("graph: no nodes")

// Build freezes the builder into an immutable Graph.
func (b *Builder) Build() (*Graph, error) {
	n := len(b.names)
	if n == 0 {
		return nil, ErrEmpty
	}
	g := &Graph{
		names:  append([]uint64(nil), b.names...),
		byName: make(map[uint64]NodeID, n),
		m:      len(b.us),
	}
	for id, name := range g.names {
		g.byName[name] = NodeID(id)
	}
	b.buildLabels(g)
	deg := make([]int32, n)
	for i := range b.us {
		deg[b.us[i]]++
		deg[b.vs[i]]++
	}
	g.offsets = make([]int32, n+1)
	for i := 0; i < n; i++ {
		g.offsets[i+1] = g.offsets[i] + deg[i]
	}
	total := g.offsets[n]
	g.targets = make([]NodeID, total)
	g.weights = make([]float64, total)
	g.revPort = make([]int32, total)
	next := make([]int32, n)
	copy(next, g.offsets[:n])
	for i := range b.us {
		u, v, w := b.us[i], b.vs[i], b.ws[i]
		pu := next[u]
		next[u]++
		pv := next[v]
		next[v]++
		g.targets[pu], g.weights[pu] = v, w
		g.targets[pv], g.weights[pv] = u, w
		g.revPort[pu] = pv - g.offsets[v]
		g.revPort[pv] = pu - g.offsets[u]
	}
	return g, nil
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.names) }

// M returns the number of undirected edges.
func (g *Graph) M() int { return g.m }

// Name returns the external name of node u.
func (g *Graph) Name(u NodeID) uint64 { return g.names[u] }

// Lookup resolves an external name to an internal id.
func (g *Graph) Lookup(name uint64) (NodeID, bool) {
	id, ok := g.byName[name]
	return id, ok
}

// Degree returns the number of incident edge endpoints at u.
func (g *Graph) Degree(u NodeID) int {
	return int(g.offsets[u+1] - g.offsets[u])
}

// Neighbors calls fn for every incident edge of u in port order,
// stopping early if fn returns false.
func (g *Graph) Neighbors(u NodeID, fn func(e Edge) bool) {
	for i := g.offsets[u]; i < g.offsets[u+1]; i++ {
		if !fn(Edge{To: g.targets[i], Weight: g.weights[i], Port: int(i - g.offsets[u])}) {
			return
		}
	}
}

// ForEachEdge calls fn once per undirected edge in canonical order —
// ascending u, then port order, each edge visited from its
// lower-numbered endpoint — stopping early if fn returns false. The
// order is the one gio.Write emits and the dynamic replay preserves,
// so two graphs with identical CSR layouts enumerate identically.
func (g *Graph) ForEachEdge(fn func(u, v NodeID, w float64) bool) {
	for u := NodeID(0); int(u) < g.N(); u++ {
		for i := g.offsets[u]; i < g.offsets[u+1]; i++ {
			if u < g.targets[i] && !fn(u, g.targets[i], g.weights[i]) {
				return
			}
		}
	}
}

// PortTo returns some port of u leading to v over the lightest parallel
// edge, or -1 if u and v are not adjacent.
func (g *Graph) PortTo(u, v NodeID) int {
	best, bestW := -1, math.Inf(1)
	for i := g.offsets[u]; i < g.offsets[u+1]; i++ {
		if g.targets[i] == v && g.weights[i] < bestW {
			best, bestW = int(i-g.offsets[u]), g.weights[i]
		}
	}
	return best
}

// EdgeAt resolves port p of node u.
func (g *Graph) EdgeAt(u NodeID, p int) Edge {
	i := g.offsets[u] + int32(p)
	if p < 0 || i >= g.offsets[u+1] {
		panic(fmt.Sprintf("graph: node %d has no port %d", u, p))
	}
	return Edge{To: g.targets[i], Weight: g.weights[i], Port: p}
}

// ReversePort returns the port at the far end of port p of u, i.e. the
// port that leads back across the same physical edge.
func (g *Graph) ReversePort(u NodeID, p int) int {
	i := g.offsets[u] + int32(p)
	if p < 0 || i >= g.offsets[u+1] {
		panic(fmt.Sprintf("graph: node %d has no port %d", u, p))
	}
	return int(g.revPort[i])
}

// Adjacent reports whether u and v share an edge.
func (g *Graph) Adjacent(u, v NodeID) bool { return g.PortTo(u, v) >= 0 }

// MinEdgeWeight returns the smallest edge weight, which for a connected
// graph equals min_{u≠v} d(u,v), the paper's normalization unit.
func (g *Graph) MinEdgeWeight() float64 {
	min := math.Inf(1)
	for _, w := range g.weights {
		if w < min {
			min = w
		}
	}
	return min
}

// MaxEdgeWeight returns the largest edge weight.
func (g *Graph) MaxEdgeWeight() float64 {
	max := 0.0
	for _, w := range g.weights {
		if w > max {
			max = w
		}
	}
	return max
}

// Connected reports whether the graph is connected.
func (g *Graph) Connected() bool {
	if g.N() == 0 {
		return false
	}
	seen := make([]bool, g.N())
	stack := []NodeID{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		g.Neighbors(u, func(e Edge) bool {
			if !seen[e.To] {
				seen[e.To] = true
				count++
				stack = append(stack, e.To)
			}
			return true
		})
	}
	return count == g.N()
}

// Components returns the connected components as sorted id slices.
func (g *Graph) Components() [][]NodeID {
	comp := make([]int, g.N())
	for i := range comp {
		comp[i] = -1
	}
	var comps [][]NodeID
	for s := NodeID(0); int(s) < g.N(); s++ {
		if comp[s] >= 0 {
			continue
		}
		c := len(comps)
		var members []NodeID
		stack := []NodeID{s}
		comp[s] = c
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			members = append(members, u)
			g.Neighbors(u, func(e Edge) bool {
				if comp[e.To] < 0 {
					comp[e.To] = c
					stack = append(stack, e.To)
				}
				return true
			})
		}
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		comps = append(comps, members)
	}
	return comps
}

// InducedSubgraph returns the subgraph induced by the given node set,
// along with the mapping from subgraph ids to original ids. Node names
// are preserved so name-hashing behaves identically in the subgraph.
func (g *Graph) InducedSubgraph(nodes []NodeID) (*Graph, []NodeID, error) {
	inSet := make(map[NodeID]NodeID, len(nodes))
	b := NewBuilder()
	orig := make([]NodeID, 0, len(nodes))
	for _, u := range nodes {
		if _, dup := inSet[u]; dup {
			return nil, nil, fmt.Errorf("graph: duplicate node %d in induced set", u)
		}
		inSet[u] = b.AddNode(g.Name(u))
		orig = append(orig, u)
	}
	for _, u := range nodes {
		su := inSet[u]
		var err error
		g.Neighbors(u, func(e Edge) bool {
			sv, ok := inSet[e.To]
			if ok && u < e.To { // add each undirected edge once
				err = b.AddEdge(su, sv, e.Weight)
			}
			return err == nil
		})
		if err != nil {
			return nil, nil, err
		}
	}
	sg, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return sg, orig, nil
}
