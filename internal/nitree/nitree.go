// Package nitree implements Lemma 4 of the paper: name-independent
// error-reporting tree routing with j-bounded searches.
//
// Given a weighted tree T with root r and a parameter k, members are
// sorted by tree distance from the root (ties by name) and assigned
// *primary names*: digit strings over Σ = {0..σ-1}, σ = ⌈n^{1/k}⌉ —
// the root gets the empty word, the next σ nodes one digit, the next
// σ² two digits, and so on. A Θ(log n)-wise-independent-style hash
// maps every external node name to k digits. A member named
// (x₁..x_j) stores
//
//  1. its Lemma 5 labeled-routing record µ(T,u),
//  2. the labels λ(T,·) of every member named (x₁..x_j,y), y ∈ Σ,
//  3. labels of the ⌈σ·ln n⌉ members closest to the root whose hash
//     starts with (x₁..x_j) — its "hash bucket".
//
// A j-bounded search for an external name walks the trie along the
// name's hash digits, checking each visited trie node's bucket. If the
// destination's primary name has i ≤ j digits the search finds it with
// stretch 2i−1 (property (a)); otherwise it reports failure back to
// the root at cost ≤ (2j−2)·max{d(r,v) : v ∈ V_{j−1}} (property (b)).
//
// The hash's prefix-load requirement (≤ σ·ln n members of V_j per
// (j−1)-digit prefix) is *verified at construction*; if a seed
// violates it we re-seed, and as a last resort the bucket capacity is
// raised to the observed maximum so that delivery is guaranteed
// deterministically, with the violation recorded for the experiment
// tables (DESIGN.md substitution #2).
package nitree

import (
	"fmt"
	"math"

	"compactroute/internal/bitsize"
	"compactroute/internal/graph"
	"compactroute/internal/tree"
	"compactroute/internal/treeroute"
	"compactroute/internal/xrand"
)

// Params configures a Lemma 4 structure.
type Params struct {
	// K is the trade-off parameter k ≥ 1.
	K int
	// UniverseN is the n in σ = ⌈n^{1/k}⌉ and in the log n factors;
	// the enclosing scheme passes the graph size (the tree may be
	// smaller). If zero, the tree size is used.
	UniverseN int
	// LoadFactor scales the bucket capacity ⌈σ·ln n⌉. Default 1.
	LoadFactor float64
	// Seed drives the name hash.
	Seed uint64
	// MaxReseeds bounds the attempts to find a hash seed satisfying
	// the prefix-load property. Default 16.
	MaxReseeds int
}

func (p *Params) normalize(treeLen int) {
	if p.K < 1 {
		p.K = 1
	}
	if p.UniverseN < treeLen {
		p.UniverseN = treeLen
	}
	if p.LoadFactor <= 0 {
		p.LoadFactor = 1
	}
	if p.MaxReseeds <= 0 {
		p.MaxReseeds = 16
	}
}

// Scheme is the Lemma 4 structure for one tree.
type Scheme struct {
	t     *tree.Tree
	lr    *treeroute.Scheme
	k     int
	sigma int
	cap   int // bucket capacity actually used
	seed  uint64
	// ReseedCount and LoadViolation record how the hash verification
	// went (for experiment tables).
	ReseedCount   int
	LoadViolation bool

	names    [][]uint16     // tree index -> primary name digits
	trie     map[string]int // primary name -> tree index
	levelLen []int          // |V_j| for j = 0..k
	storage  []nodeStore    // per tree index
}

// nodeStore is what one member stores beyond µ(T,u).
type nodeStore struct {
	childLabels map[uint16]treeroute.Label // item 2
	bucket      map[uint64]treeroute.Label // item 3: external name -> label
}

// New builds the Lemma 4 structures over t.
func New(t *tree.Tree, p Params) (*Scheme, error) {
	m := t.Len()
	p.normalize(m)
	if p.K > 60 {
		return nil, fmt.Errorf("nitree: k=%d too large", p.K)
	}
	sigma := int(math.Ceil(math.Pow(float64(p.UniverseN), 1/float64(p.K))))
	if sigma < 2 {
		sigma = 2
	}
	if sigma > 1<<16 {
		return nil, fmt.Errorf("nitree: alphabet %d too large", sigma)
	}
	s := &Scheme{
		t:     t,
		lr:    treeroute.New(t),
		k:     p.K,
		sigma: sigma,
	}
	s.assignNames()
	theoryCap := int(math.Ceil(float64(sigma) * math.Log(math.Max(float64(p.UniverseN), 2)) * p.LoadFactor))
	if theoryCap < 1 {
		theoryCap = 1
	}
	// Find a hash seed satisfying the prefix-load property.
	seed := p.Seed
	bestSeed, bestLoad := seed, math.MaxInt
	for attempt := 0; attempt < p.MaxReseeds; attempt++ {
		load := s.maxPrefixLoad(seed)
		if load < bestLoad {
			bestSeed, bestLoad = seed, load
		}
		if load <= theoryCap {
			break
		}
		s.ReseedCount++
		seed = xrand.Hash64(0x5eed, seed+uint64(attempt)+1)
	}
	s.seed = bestSeed
	s.cap = theoryCap
	if bestLoad > theoryCap {
		// Deterministic-correctness fallback: widen buckets so every
		// member is still guaranteed discoverable.
		s.cap = bestLoad
		s.LoadViolation = true
	}
	s.buildStorage()
	return s, nil
}

// assignNames gives members primary names in by-depth order: the root
// the empty word, then σ one-digit names, σ² two-digit names, …
func (s *Scheme) assignNames() {
	m := s.t.Len()
	s.names = make([][]uint16, m)
	s.trie = make(map[string]int, m)
	s.levelLen = make([]int, s.k+1)
	order := s.t.ByDepth()

	pos := 0
	levelSize := 1 // σ^level
	for level := 0; level <= s.k && pos < m; level++ {
		if level > 0 {
			levelSize *= s.sigma
		}
		count := levelSize
		if pos+count > m {
			count = m - pos
		}
		digits := make([]uint16, level)
		for c := 0; c < count; c++ {
			i := int(order[pos])
			name := make([]uint16, level)
			copy(name, digits)
			s.names[i] = name
			s.trie[digitKey(name)] = i
			pos++
			// Increment digit string lexicographically.
			for d := level - 1; d >= 0; d-- {
				digits[d]++
				if int(digits[d]) < s.sigma {
					break
				}
				digits[d] = 0
			}
		}
		s.levelLen[level] = pos
	}
	if pos < m {
		// Unreachable: σ^k ≥ UniverseN ≥ m guarantees enough names.
		panic(fmt.Sprintf("nitree: ran out of names at %d of %d", pos, m))
	}
	// levelLen[j] is cumulative |V_j|; levels past the last assigned
	// one keep the final count.
	for level := 1; level <= s.k; level++ {
		if s.levelLen[level] < s.levelLen[level-1] {
			s.levelLen[level] = s.levelLen[level-1]
		}
	}
}

// hashDigit returns digit d of the k-digit hash of an external name.
func (s *Scheme) hashDigit(name uint64, d int) uint16 {
	return uint16(xrand.Hash64(s.seed+uint64(d)*0x9e37, name) % uint64(s.sigma))
}

// hashPrefix returns the first j hash digits of a name.
func (s *Scheme) hashPrefix(name uint64, j int) []uint16 {
	p := make([]uint16, j)
	for d := 0; d < j; d++ {
		p[d] = s.hashDigit(name, d)
	}
	return p
}

// digitKey packs a digit string into a map key.
func digitKey(d []uint16) string {
	b := make([]byte, 2*len(d))
	for i, v := range d {
		b[2*i] = byte(v)
		b[2*i+1] = byte(v >> 8)
	}
	return string(b)
}

// maxPrefixLoad computes, under the given seed, the largest number of
// members of V_j sharing a (j-1)-digit hash prefix, over all j.
func (s *Scheme) maxPrefixLoad(seed uint64) int {
	saved := s.seed
	s.seed = seed
	defer func() { s.seed = saved }()
	order := s.t.ByDepth()
	max := 0
	for j := 1; j <= s.k; j++ {
		counts := make(map[string]int)
		vj := s.levelLen[j]
		for pos := 0; pos < vj; pos++ {
			v := s.t.Node(int(order[pos]))
			key := digitKey(s.hashPrefix(s.t.Graph().Name(v), j-1))
			counts[key]++
			if counts[key] > max {
				max = counts[key]
			}
		}
	}
	return max
}

// buildStorage fills items 2 and 3 for every member.
func (s *Scheme) buildStorage() {
	m := s.t.Len()
	s.storage = make([]nodeStore, m)
	for i := range s.storage {
		s.storage[i].childLabels = make(map[uint16]treeroute.Label)
		s.storage[i].bucket = make(map[uint64]treeroute.Label)
	}
	// Item 2: parent trie node stores each child name's label.
	for i := 0; i < m; i++ {
		name := s.names[i]
		if len(name) == 0 {
			continue
		}
		parent, ok := s.trie[digitKey(name[:len(name)-1])]
		if !ok {
			panic("nitree: trie not prefix-closed")
		}
		s.storage[parent].childLabels[name[len(name)-1]] = s.lr.Label(i)
	}
	// Item 3: walk members closest-to-root first; each contributes to
	// the bucket of the trie node matching every hash prefix of its
	// external name, until that bucket is full.
	g := s.t.Graph()
	order := s.t.ByDepth()
	for pos := 0; pos < m; pos++ {
		i := int(order[pos])
		ext := g.Name(s.t.Node(i))
		prefix := make([]uint16, 0, s.k)
		for j := 0; j <= s.k; j++ {
			x, ok := s.trie[digitKey(prefix)]
			if ok && len(s.storage[x].bucket) < s.cap {
				if _, dup := s.storage[x].bucket[ext]; !dup {
					s.storage[x].bucket[ext] = s.lr.Label(i)
				}
			}
			if j < s.k {
				prefix = append(prefix, s.hashDigit(ext, j))
			}
		}
	}
}

// Tree returns the underlying tree.
func (s *Scheme) Tree() *tree.Tree { return s.t }

// Labeled returns the embedded Lemma 5 scheme.
func (s *Scheme) Labeled() *treeroute.Scheme { return s.lr }

// Sigma returns the alphabet size σ = ⌈n^{1/k}⌉.
func (s *Scheme) Sigma() int { return s.sigma }

// BucketCap returns the bucket capacity in effect.
func (s *Scheme) BucketCap() int { return s.cap }

// PrimaryName returns the digit string of member i (root: empty).
func (s *Scheme) PrimaryName(i int) []uint16 { return s.names[i] }

// LevelSize returns |V_j|: the number of members with ≤ j digits.
func (s *Scheme) LevelSize(j int) int {
	if j > s.k {
		j = s.k
	}
	if j < 0 {
		return 0
	}
	return s.levelLen[j]
}

// StorageBits returns the accounting size of member i's tables: the
// hash function share, µ(T,u), child labels, and the hash bucket.
func (s *Scheme) StorageBits(i int) bitsize.Bits {
	logn := bitsize.Log2Ceil(s.t.Len())
	if logn < 1 {
		logn = 1
	}
	b := bitsize.Bits(logn * logn) // Θ(log² n) for the hash function
	b += s.lr.LocalBits(i)
	for _, l := range s.storage[i].childLabels {
		b += 8 + l.Bits() // digit + label
	}
	for range s.storage[i].bucket {
		b += bitsize.NameBits
	}
	for _, l := range s.storage[i].bucket {
		b += l.Bits()
	}
	return b
}

// MinBound returns the smallest j such that a j-bounded search finds
// the member with external name ext, or 0 if no bound suffices (the
// name is not discoverable — never the case for tree members). This is
// the quantity b(u,i) of §3.1 is computed from.
func (s *Scheme) MinBound(ext uint64) int {
	prefix := make([]uint16, 0, s.k)
	for round := 1; round <= s.k; round++ {
		x, ok := s.trie[digitKey(prefix)]
		if !ok {
			return 0
		}
		if _, hit := s.storage[x].bucket[ext]; hit {
			return round
		}
		prefix = append(prefix, s.hashDigit(ext, round-1))
	}
	return 0
}

// --- j-bounded search as a distributed step machine ---

// Phase of a search in progress.
type phase uint16

const (
	phaseToTrieNode phase = iota // heading to the next trie node
	phaseToTarget                // destination label acquired
	phaseToRoot                  // negative: returning to the root
)

// Search is the routing header of one j-bounded search. It holds only
// information a real header would: the target's external name, the
// bound, the current leg's label, and the round counter.
type Search struct {
	Target uint64
	Bound  int
	round  int
	phase  phase
	leg    treeroute.Label
	// Outcome flags, set when the search terminates.
	Found    bool
	Negative bool
}

// HeaderBits returns the accounting size of the search header.
func (h *Search) HeaderBits() bitsize.Bits {
	return bitsize.NameBits + 16 + h.leg.Bits()
}

// NewSearch prepares a j-bounded search for ext starting at the root.
// The first leg trivially targets the root itself.
func (s *Scheme) NewSearch(ext uint64, bound int) *Search {
	if bound < 1 {
		bound = 1
	}
	if bound > s.k {
		bound = s.k
	}
	rootIdx, _ := s.t.Index(s.t.Root())
	return &Search{Target: ext, Bound: bound, round: 0, phase: phaseToTrieNode, leg: s.lr.Label(rootIdx)}
}

// Action tells the driving engine what a step decided.
type Action uint16

const (
	// Forward: cross the returned port.
	Forward Action = iota
	// Delivered: the current node is the destination.
	Delivered
	// ReportedNotFound: the search ended back at the root with a
	// negative result.
	ReportedNotFound
)

// Step advances the search at graph node x. It consults only x's local
// tables and the header.
func (s *Scheme) Step(x graph.NodeID, h *Search) (Action, int, error) {
	arrived, port, err := s.lr.Step(x, h.leg)
	if err != nil {
		return 0, 0, fmt.Errorf("nitree: %w", err)
	}
	if !arrived {
		return Forward, port, nil
	}
	// We are at the end of a leg.
	switch h.phase {
	case phaseToTarget:
		h.Found = true
		return Delivered, 0, nil
	case phaseToRoot:
		h.Negative = true
		return ReportedNotFound, 0, nil
	}
	// At a trie node: make the local decision.
	i, ok := s.t.Index(x)
	if !ok {
		return 0, 0, fmt.Errorf("nitree: trie node %d not a member", x)
	}
	st := &s.storage[i]
	h.round++
	if lbl, hit := st.bucket[h.Target]; hit {
		if s.t.Graph().Name(x) == h.Target {
			h.Found = true
			return Delivered, 0, nil
		}
		h.phase = phaseToTarget
		h.leg = lbl
		return s.Step(x, h)
	}
	negative := func() (Action, int, error) {
		if len(s.names[i]) == 0 { // already at the root
			h.Negative = true
			return ReportedNotFound, 0, nil
		}
		h.phase = phaseToRoot
		rootIdx, _ := s.t.Index(s.t.Root())
		h.leg = s.lr.Label(rootIdx)
		return s.Step(x, h)
	}
	if h.round >= h.Bound {
		return negative()
	}
	digit := s.hashDigit(h.Target, h.round-1)
	next, hit := st.childLabels[digit]
	if !hit {
		// The trie has no deeper node on this hash path, so the name
		// cannot exist in the tree: report the error.
		return negative()
	}
	h.phase = phaseToTrieNode
	h.leg = next
	return s.Step(x, h)
}

// RunSearch drives a full search from the root for tests and
// construction-time probing. It returns the traversed node path.
func (s *Scheme) RunSearch(ext uint64, bound int) (found bool, path []graph.NodeID, err error) {
	h := s.NewSearch(ext, bound)
	g := s.t.Graph()
	cur := s.t.Root()
	path = []graph.NodeID{cur}
	for steps := 0; ; steps++ {
		if steps > 16*s.t.Len()*(s.k+1) {
			return false, path, fmt.Errorf("nitree: search not terminating")
		}
		act, port, err := s.Step(cur, h)
		if err != nil {
			return false, path, err
		}
		switch act {
		case Delivered:
			return true, path, nil
		case ReportedNotFound:
			return false, path, nil
		case Forward:
			cur = g.EdgeAt(cur, port).To
			path = append(path, cur)
		}
	}
}
