package nitree

import (
	"math"
	"testing"

	"compactroute/internal/gen"
	"compactroute/internal/graph"
	"compactroute/internal/sssp"
	"compactroute/internal/tree"
)

func buildSPT(t *testing.T, g *graph.Graph, root graph.NodeID) *tree.Tree {
	t.Helper()
	r := sssp.From(g, root)
	tr, err := tree.FromSPT(g, root, r.Parent)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func mustNew(t *testing.T, tr *tree.Tree, p Params) *Scheme {
	t.Helper()
	s, err := New(tr, p)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func pathCost(t *testing.T, g *graph.Graph, path []graph.NodeID) float64 {
	t.Helper()
	c := 0.0
	for i := 0; i+1 < len(path); i++ {
		p := g.PortTo(path[i], path[i+1])
		if p < 0 {
			t.Fatalf("hop %d→%d not an edge", path[i], path[i+1])
		}
		c += g.EdgeAt(path[i], p).Weight
	}
	return c
}

func TestNamesAssignedInDepthOrder(t *testing.T) {
	g := gen.Gnp(1, 60, 0.08, gen.Uniform(1, 4))
	tr := buildSPT(t, g, 0)
	s := mustNew(t, tr, Params{K: 3, Seed: 7})
	order := tr.ByDepth()
	prevLen := 0
	for pos, ti := range order {
		name := s.PrimaryName(int(ti))
		if len(name) < prevLen {
			t.Fatalf("name lengths not monotone at pos %d", pos)
		}
		prevLen = len(name)
	}
	// Root has the empty name.
	ri, _ := tr.Index(tr.Root())
	if len(s.PrimaryName(ri)) != 0 {
		t.Fatal("root name not empty")
	}
}

func TestLevelSizes(t *testing.T) {
	g := gen.Gnp(2, 100, 0.05, gen.Unit())
	tr := buildSPT(t, g, 0)
	s := mustNew(t, tr, Params{K: 3, Seed: 1})
	sigma := s.Sigma()
	// |V_0| = 1, |V_1| = 1+σ, capped at m.
	if s.LevelSize(0) != 1 {
		t.Fatalf("|V_0| = %d", s.LevelSize(0))
	}
	want := 1 + sigma
	if want > tr.Len() {
		want = tr.Len()
	}
	if s.LevelSize(1) != want {
		t.Fatalf("|V_1| = %d, want %d", s.LevelSize(1), want)
	}
	if s.LevelSize(3) != tr.Len() {
		t.Fatalf("|V_k| = %d, want all %d", s.LevelSize(3), tr.Len())
	}
	// Monotone.
	for j := 1; j <= 3; j++ {
		if s.LevelSize(j) < s.LevelSize(j-1) {
			t.Fatal("level sizes not monotone")
		}
	}
}

func TestFullSearchFindsEveryMember(t *testing.T) {
	for _, k := range []int{1, 2, 3, 4} {
		g := gen.Gnp(3, 80, 0.06, gen.Uniform(1, 5))
		tr := buildSPT(t, g, 4)
		s := mustNew(t, tr, Params{K: k, Seed: 11})
		for i := 0; i < tr.Len(); i++ {
			ext := g.Name(tr.Node(i))
			found, path, err := s.RunSearch(ext, k)
			if err != nil {
				t.Fatalf("k=%d search for member %d: %v", k, i, err)
			}
			if !found {
				t.Fatalf("k=%d member %d not found", k, i)
			}
			if path[len(path)-1] != tr.Node(i) {
				t.Fatalf("k=%d search ended at wrong node", k)
			}
		}
	}
}

func TestSearchStretchBound(t *testing.T) {
	// Property (a): if found at round i, cost ≤ (2i−1)·d(r,v), and in
	// particular ≤ (2k−1)·d(r,v).
	g := gen.Gnp(4, 120, 0.04, gen.Uniform(1, 6))
	tr := buildSPT(t, g, 0)
	k := 3
	s := mustNew(t, tr, Params{K: k, Seed: 5})
	for i := 0; i < tr.Len(); i++ {
		v := tr.Node(i)
		ext := g.Name(v)
		found, path, err := s.RunSearch(ext, k)
		if err != nil || !found {
			t.Fatalf("member %d not found: %v", i, err)
		}
		cost := pathCost(t, g, path)
		dv := tr.Depth(i)
		bound := float64(2*k-1) * dv
		if cost > bound+1e-9 {
			t.Fatalf("member %d: search cost %v > (2k-1)·d = %v", i, cost, bound)
		}
	}
}

func TestMinBoundSufficientAndTight(t *testing.T) {
	g := gen.Gnp(5, 90, 0.05, gen.Uniform(1, 3))
	tr := buildSPT(t, g, 2)
	k := 3
	s := mustNew(t, tr, Params{K: k, Seed: 9})
	for i := 0; i < tr.Len(); i++ {
		ext := g.Name(tr.Node(i))
		b := s.MinBound(ext)
		if b < 1 || b > k {
			t.Fatalf("MinBound(%d) = %d out of range", i, b)
		}
		found, _, err := s.RunSearch(ext, b)
		if err != nil || !found {
			t.Fatalf("b-bounded search failed for member %d with b=%d", i, b)
		}
		if b > 1 {
			// One less must fail (tightness of MinBound).
			found, _, err := s.RunSearch(ext, b-1)
			if err != nil {
				t.Fatal(err)
			}
			if found {
				t.Fatalf("member %d found with bound %d < MinBound %d", i, b-1, b)
			}
		}
	}
}

func TestNegativeResponseReturnsToRootWithCostBound(t *testing.T) {
	// Property (b): a failed j-bounded search returns to the root at
	// cost ≤ (2j−2)·max{d(r,v) : v ∈ V_{j−1}}.
	g := gen.Gnp(6, 100, 0.05, gen.Uniform(1, 4))
	tr := buildSPT(t, g, 0)
	k := 4
	s := mustNew(t, tr, Params{K: k, Seed: 3})
	order := tr.ByDepth()
	for j := 2; j <= k; j++ {
		// Max depth among V_{j-1}.
		vj1 := s.LevelSize(j - 1)
		maxD := 0.0
		for pos := 0; pos < vj1; pos++ {
			if d := tr.Depth(int(order[pos])); d > maxD {
				maxD = d
			}
		}
		// Search for names that are not in the graph at all.
		for q := uint64(0); q < 50; q++ {
			ext := 0xdead0000 + q*7919
			if _, ok := g.Lookup(ext); ok {
				continue
			}
			found, path, err := s.RunSearch(ext, j)
			if err != nil {
				t.Fatal(err)
			}
			if found {
				t.Fatalf("found non-existent name %#x", ext)
			}
			if path[len(path)-1] != tr.Root() {
				t.Fatal("negative response did not return to root")
			}
			cost := pathCost(t, g, path)
			bound := float64(2*j-2)*maxD + 1e-9
			if cost > bound {
				t.Fatalf("negative search cost %v > bound %v (j=%d)", cost, bound, j)
			}
		}
	}
}

func TestSearchForRootItself(t *testing.T) {
	g := gen.Star(7, 20, gen.Uniform(1, 2))
	tr := buildSPT(t, g, 0)
	s := mustNew(t, tr, Params{K: 2, Seed: 1})
	found, path, err := s.RunSearch(g.Name(0), 1)
	if err != nil || !found {
		t.Fatalf("root not found: %v", err)
	}
	if len(path) != 1 {
		t.Fatalf("root search moved: %v", path)
	}
}

func TestSingleNodeTree(t *testing.T) {
	g := gen.Path(8, 1, gen.Unit())
	tr, err := tree.NewBuilder(g, 0).Build()
	if err != nil {
		t.Fatal(err)
	}
	s := mustNew(t, tr, Params{K: 2, Seed: 1})
	found, _, err := s.RunSearch(g.Name(0), 2)
	if err != nil || !found {
		t.Fatal("single node not found")
	}
	found, _, err = s.RunSearch(12345, 2)
	if err != nil || found {
		t.Fatal("phantom found in single node tree")
	}
}

func TestPrunedTreeMembersOnly(t *testing.T) {
	// A landmark tree spanning a subset: search must find exactly the
	// members and reject non-member graph nodes.
	g := gen.Gnp(9, 60, 0.08, gen.Uniform(1, 3))
	r := sssp.From(g, 0)
	targets := []graph.NodeID{5, 10, 15, 20, 25, 30}
	tr, err := tree.FromPaths(g, 0, r.Parent, targets)
	if err != nil {
		t.Fatal(err)
	}
	s := mustNew(t, tr, Params{K: 2, UniverseN: g.N(), Seed: 13})
	for _, v := range targets {
		found, path, err := s.RunSearch(g.Name(v), 2)
		if err != nil || !found || path[len(path)-1] != v {
			t.Fatalf("member %d not found: %v", v, err)
		}
	}
	misses := 0
	for v := graph.NodeID(0); int(v) < g.N(); v++ {
		if !tr.Contains(v) {
			found, _, err := s.RunSearch(g.Name(v), 2)
			if err != nil {
				t.Fatal(err)
			}
			if found {
				t.Fatalf("non-member %d found in pruned tree", v)
			}
			misses++
		}
	}
	if misses == 0 {
		t.Fatal("test vacuous: no non-members")
	}
}

func TestStorageWithinLemmaBound(t *testing.T) {
	// Lemma 4: O(k n^{1/k} log² n) bits per node. Verify with a
	// generous explicit constant.
	g := gen.Gnp(10, 200, 0.03, gen.Unit())
	tr := buildSPT(t, g, 0)
	for _, k := range []int{2, 3, 4} {
		s := mustNew(t, tr, Params{K: k, Seed: 2})
		n := float64(g.N())
		logn := math.Log2(n)
		bound := 400.0 * float64(k) * math.Pow(n, 1/float64(k)) * logn * logn
		for i := 0; i < tr.Len(); i++ {
			if got := float64(s.StorageBits(i)); got > bound {
				t.Fatalf("k=%d node %d stores %v bits > bound %v", k, i, got, bound)
			}
		}
	}
}

func TestHeaderBitsPolylog(t *testing.T) {
	g := gen.Gnp(11, 150, 0.04, gen.Unit())
	tr := buildSPT(t, g, 0)
	s := mustNew(t, tr, Params{K: 3, Seed: 4})
	h := s.NewSearch(g.Name(7), 3)
	if h.HeaderBits() <= 0 || h.HeaderBits() > 4096 {
		t.Fatalf("header bits = %d", h.HeaderBits())
	}
}

func TestBucketCapRespectsTheory(t *testing.T) {
	g := gen.Gnp(12, 150, 0.04, gen.Unit())
	tr := buildSPT(t, g, 0)
	s := mustNew(t, tr, Params{K: 3, Seed: 21})
	theory := int(math.Ceil(float64(s.Sigma()) * math.Log(float64(g.N()))))
	if !s.LoadViolation && s.BucketCap() != theory {
		t.Fatalf("cap %d != theory %d without violation", s.BucketCap(), theory)
	}
	// Buckets must not exceed the cap.
	for i := range s.storage {
		if len(s.storage[i].bucket) > s.BucketCap() {
			t.Fatalf("bucket %d overflows cap", i)
		}
	}
}

func TestPathGraphWorstCase(t *testing.T) {
	// A path rooted at one end is the worst case for depth ordering.
	g := gen.Path(13, 64, gen.Uniform(1, 2))
	tr := buildSPT(t, g, 0)
	k := 3
	s := mustNew(t, tr, Params{K: k, Seed: 8})
	for i := 0; i < tr.Len(); i++ {
		ext := g.Name(tr.Node(i))
		found, path, err := s.RunSearch(ext, k)
		if err != nil || !found {
			t.Fatalf("path member %d not found", i)
		}
		cost := pathCost(t, g, path)
		if dv := tr.Depth(i); cost > float64(2*k-1)*dv+1e-9 {
			t.Fatalf("stretch violated on path graph: %v > %v", cost, float64(2*k-1)*dv)
		}
	}
}

func TestParamsNormalization(t *testing.T) {
	g := gen.Path(14, 4, gen.Unit())
	tr := buildSPT(t, g, 0)
	// K=0 normalizes to 1; zero universe uses tree size.
	s := mustNew(t, tr, Params{})
	if s.k != 1 {
		t.Fatalf("k normalized to %d", s.k)
	}
	if _, err := New(tr, Params{K: 100}); err == nil {
		t.Fatal("k=100 accepted")
	}
}
