package nitree

import (
	"testing"
	"testing/quick"

	"compactroute/internal/gen"
	"compactroute/internal/sssp"
	"compactroute/internal/tree"
)

// Property: on arbitrary random SPTs and k values, every member is
// found by a full search within the 2k−1 stretch bound, every phantom
// is reported missing, and MinBound is both sufficient and tight.
func TestSearchInvariantsProperty(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		k := 2 + int(kRaw%3) // k ∈ {2,3,4}
		g := gen.Gnp(seed, 40, 0.1, gen.Uniform(1, 5))
		r := sssp.From(g, 0)
		tr, err := tree.FromSPT(g, 0, r.Parent)
		if err != nil {
			return false
		}
		s, err := New(tr, Params{K: k, Seed: seed ^ 0xabc})
		if err != nil {
			return false
		}
		for i := 0; i < tr.Len(); i += 3 {
			ext := g.Name(tr.Node(i))
			found, path, err := s.RunSearch(ext, k)
			if err != nil || !found || path[len(path)-1] != tr.Node(i) {
				return false
			}
			cost := 0.0
			for j := 0; j+1 < len(path); j++ {
				p := g.PortTo(path[j], path[j+1])
				if p < 0 {
					return false
				}
				cost += g.EdgeAt(path[j], p).Weight
			}
			if d := tr.Depth(i); cost > float64(2*k-1)*d+1e-9 {
				return false
			}
			b := s.MinBound(ext)
			if b < 1 || b > k {
				return false
			}
			if ok, _, _ := s.RunSearch(ext, b); !ok {
				return false
			}
		}
		// Phantoms never found, always reported at the root.
		for q := uint64(1); q <= 5; q++ {
			ext := seed*2654435761 + q
			if _, exists := g.Lookup(ext); exists {
				continue
			}
			found, path, err := s.RunSearch(ext, k)
			if err != nil || found || path[len(path)-1] != tr.Root() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: primary names are prefix-closed — every strict prefix of
// an assigned name is also assigned (the trie walk depends on it).
func TestTriePrefixClosedProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := gen.Geometric(seed, 50, 0.3)
		r := sssp.From(g, 0)
		tr, err := tree.FromSPT(g, 0, r.Parent)
		if err != nil {
			return false
		}
		s, err := New(tr, Params{K: 3, Seed: seed})
		if err != nil {
			return false
		}
		for i := 0; i < tr.Len(); i++ {
			name := s.PrimaryName(i)
			for l := 0; l < len(name); l++ {
				if _, ok := s.trie[digitKey(name[:l])]; !ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
