package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTracerSamplesOneInN(t *testing.T) {
	tr := NewTracer(16, 4)
	traced := 0
	for i := 0; i < 400; i++ {
		if x := tr.Begin(""); x != nil {
			traced++
			if !validID(x.ID()) || len(x.ID()) != 16 {
				t.Fatalf("minted ID %q is not 16 valid chars", x.ID())
			}
		}
	}
	if traced != 100 {
		t.Fatalf("1-in-4 sampling traced %d of 400", traced)
	}
	if tr.Sampled() != 100 {
		t.Fatalf("Sampled() = %d, want 100", tr.Sampled())
	}
}

func TestTracerPropagatedIDForcesTrace(t *testing.T) {
	tr := NewTracer(16, 0) // sampling off: only propagation traces
	if x := tr.Begin(""); x != nil {
		t.Fatal("sampling off minted a trace without a propagated ID")
	}
	x := tr.Begin("upstream-id_01")
	if x == nil || x.ID() != "upstream-id_01" {
		t.Fatalf("propagated ID not adopted: %v", x)
	}
	// Hostile headers are treated as absent, never echoed.
	for _, bad := range []string{"", "has space", "has\nnewline", `quote"`, strings.Repeat("x", 65)} {
		if x := tr.Begin(bad); x != nil {
			t.Fatalf("invalid propagated ID %q began a trace", bad)
		}
	}
}

func TestTracerMintsDistinctIDs(t *testing.T) {
	tr := NewTracer(4, 1)
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := tr.Begin("").ID()
		if seen[id] {
			t.Fatalf("duplicate minted ID %q", id)
		}
		seen[id] = true
	}
}

func TestRingEvictsOldestAndFindsNewest(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 6; i++ {
		tr := newTrace(fmt.Sprintf("id-%d", i))
		tr.Finish("/route", 200+i)
		r.Store(tr)
	}
	if _, ok := r.Get("id-0"); ok {
		t.Fatal("evicted trace still retrievable")
	}
	if _, ok := r.Get("id-1"); ok {
		t.Fatal("evicted trace still retrievable")
	}
	if v, ok := r.Get("id-5"); !ok || v.Status != 205 {
		t.Fatalf("newest trace: %+v, %v", v, ok)
	}
	recent := r.Recent(10)
	if len(recent) != 4 {
		t.Fatalf("Recent returned %d of 4 retained", len(recent))
	}
	if recent[0].ID != "id-5" || recent[3].ID != "id-2" {
		t.Fatalf("Recent order: %s … %s, want id-5 … id-2", recent[0].ID, recent[3].ID)
	}
	// A re-stored duplicate ID resolves to the newest copy.
	dup := newTrace("id-5")
	dup.Finish("/route", 299)
	r.Store(dup)
	if v, _ := r.Get("id-5"); v.Status != 299 {
		t.Fatalf("duplicate ID resolved to status %d, want the newest 299", v.Status)
	}
}

func TestTraceBoundsAndView(t *testing.T) {
	tr := newTrace("abc")
	for i := 0; i < maxSpans+10; i++ {
		tr.Event("layer", "ev", "")
	}
	for i := 0; i < maxHops+10; i++ {
		tr.Hop(uint64(i), i)
	}
	tr.Finish("/route", 200)
	v := tr.View()
	if len(v.Spans) != maxSpans || len(v.Path) != maxHops || !v.Truncated {
		t.Fatalf("bounds: %d spans %d hops truncated=%v", len(v.Spans), len(v.Path), v.Truncated)
	}
	if v.ID != "abc" || v.Endpoint != "/route" || v.Status != 200 || v.DurNs <= 0 {
		t.Fatalf("view: %+v", v)
	}
	// Nil traces swallow everything (the untraced path).
	var nilTr *Trace
	nilTr.Event("l", "n", "")
	nilTr.Hop(1, 2)
	nilTr.Finish("/x", 1)
	if nilTr.ID() != "" {
		t.Fatal("nil trace has an ID")
	}
}

func TestTraceConcurrentRecording(t *testing.T) {
	tr := newTrace("conc")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tr.Hop(uint64(w), i)
				tr.Event("layer", "ev", "")
				_ = tr.View()
			}
		}(w)
	}
	wg.Wait()
	if v := tr.View(); len(v.Spans) != maxSpans || len(v.Path) != 200 {
		t.Fatalf("concurrent recording lost entries: %d spans %d hops", len(v.Spans), len(v.Path))
	}
}

func TestContextHelpers(t *testing.T) {
	ctx := context.Background()
	Mark(ctx, "l", "n", "") // no trace in ctx: no-op, no panic
	tr := newTrace("ctx")
	ctx = WithTrace(ctx, tr)
	if FromContext(ctx) != tr {
		t.Fatal("FromContext lost the trace")
	}
	Mark(ctx, "layer", "name", "detail")
	SpanSince(ctx, "layer", "span", "", time.Now().Add(-time.Millisecond))
	SpanN(ctx, "layer", "spann", "", time.Now(), 7)
	v := tr.View()
	if len(v.Spans) != 3 || v.Spans[1].DurNs <= 0 || v.Spans[2].N != 7 {
		t.Fatalf("ctx helpers recorded %+v", v.Spans)
	}
	// WithTrace(nil) shadows an outer trace: advisory legs stay silent.
	inner := WithTrace(ctx, nil)
	Mark(inner, "layer", "leak", "")
	if len(tr.View().Spans) != 3 {
		t.Fatal("nil-shadowed context still recorded onto the outer trace")
	}
}

func TestMetricsTextRoundTripAndMonotonicity(t *testing.T) {
	m := NewMetrics()
	scrape := func() map[string]*ParsedFamily {
		t.Helper()
		var buf bytes.Buffer
		if err := WriteText(&buf, m.Families()); err != nil {
			t.Fatal(err)
		}
		fams, err := ParseText(buf.String())
		if err != nil {
			t.Fatalf("scrape does not parse: %v\n%s", err, buf.String())
		}
		return fams
	}
	counterValue := func(fams map[string]*ParsedFamily, endpoint, class string) float64 {
		for _, p := range fams[MetricRequestsTotal].Points {
			if p.Labels["endpoint"] == endpoint && p.Labels["class"] == class {
				return p.Value
			}
		}
		return -1
	}

	m.ObserveRequest("/route", 200, 0.001)
	m.ObserveRequest("/route", 200, 0.002)
	m.ObserveRequest("/route", 503, 0.0001)
	m.ObserveStretch("tz", 1.3)
	m.ObserveStretch("tz", 2.5)
	first := scrape()
	if got := counterValue(first, "/route", "2xx"); got != 2 {
		t.Fatalf("2xx counter = %v, want 2", got)
	}
	if got := counterValue(first, "/route", "5xx"); got != 1 {
		t.Fatalf("5xx counter = %v, want 1", got)
	}
	if f := first[MetricRouteStretch]; f == nil || f.Type != "histogram" {
		t.Fatalf("stretch family: %+v", f)
	}

	m.ObserveRequest("/route", 200, 0.003)
	m.ObserveStretch("tz", 1.0)
	second := scrape()
	for _, class := range []string{"2xx", "5xx"} {
		a, b := counterValue(first, "/route", class), counterValue(second, "/route", class)
		if b < a {
			t.Fatalf("%s counter went backwards across scrapes: %v → %v", class, a, b)
		}
	}
	if got := counterValue(second, "/route", "2xx"); got != 3 {
		t.Fatalf("2xx counter after third request = %v, want 3", got)
	}
}

func TestStatusClass(t *testing.T) {
	for status, want := range map[int]string{
		200: "2xx", 204: "2xx", 302: "3xx", 409: "4xx", 422: "4xx",
		502: "5xx", 503: "5xx", 199: "other", 601: "other",
	} {
		if got := StatusClass(status); got != want {
			t.Errorf("StatusClass(%d) = %q, want %q", status, got, want)
		}
	}
}

func TestParseTextRejectsMalformed(t *testing.T) {
	for name, text := range map[string]string{
		"sample outside family": "compactroute_x_total 1\n",
		"bad value":             "# TYPE compactroute_x_total counter\ncompactroute_x_total one\n",
		"bad type":              "# TYPE compactroute_x_total banana\n",
		"non-cumulative buckets": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 5` + "\n" + `h_bucket{le="2"} 3` + "\n" + `h_bucket{le="+Inf"} 5` + "\nh_count 5\n",
		"inf bucket != count": "# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 4` + "\nh_count 5\n",
		"missing inf bucket": "# TYPE h histogram\n" +
			`h_bucket{le="2"} 4` + "\nh_count 4\n",
	} {
		if _, err := ParseText(text); err == nil {
			t.Errorf("%s: parsed without error:\n%s", name, text)
		}
	}
}

func TestJournalBoundedWithMonotonicCounts(t *testing.T) {
	j := NewJournal(3)
	for i := 0; i < 5; i++ {
		j.Record("swap", fmt.Sprintf("v%d", i))
	}
	j.Record("eject", "shard 2")
	evs := j.Events()
	if len(evs) != 3 {
		t.Fatalf("journal retained %d events, want 3", len(evs))
	}
	if evs[0].Seq >= evs[1].Seq || evs[2].Kind != "eject" {
		t.Fatalf("journal order: %+v", evs)
	}
	f := j.CountFamily()
	counts := map[string]float64{}
	for _, p := range f.Points {
		counts[p.Labels[0].Value] = p.Value
	}
	// Lifetime counts survive eviction.
	if counts["swap"] != 5 || counts["eject"] != 1 {
		t.Fatalf("lifetime counts %v, want swap=5 eject=1", counts)
	}
}

func TestSlowLogThresholdAndRefused(t *testing.T) {
	var buf bytes.Buffer
	l := NewSlowLog(&buf, 50*time.Millisecond)
	l.Observe("/route", "src=1", "id1", 200, 10*time.Millisecond) // fast 2xx: silent
	l.Observe("/route", "src=2", "id2", 200, 60*time.Millisecond) // slow
	l.Observe("/route", "src=3", "id3", 503, time.Millisecond)    // refused
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("slow log wrote %d lines, want 2:\n%s", len(lines), buf.String())
	}
	var e SlowEntry
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
		t.Fatalf("slow log line is not JSON: %v", err)
	}
	if e.Reason != "slow" || e.TraceID != "id2" {
		t.Fatalf("first entry %+v, want slow/id2", e)
	}
	if err := json.Unmarshal([]byte(lines[1]), &e); err != nil || e.Reason != "refused" || e.Status != 503 {
		t.Fatalf("second entry %+v (%v), want refused/503", e, err)
	}
	// Nil receiver (log disabled) is a no-op.
	var off *SlowLog
	off.Observe("/route", "", "", 503, time.Hour)
	if NewSlowLog(nil, 0) != nil {
		t.Fatal("NewSlowLog(nil) should disable the log")
	}
}

func TestHTTPObserveMintsAndAdoptsTraces(t *testing.T) {
	o := &HTTP{Tracer: NewTracer(8, 1), Metrics: NewMetrics()}
	h := o.Observe("/route", func(w http.ResponseWriter, r *http.Request) {
		Mark(r.Context(), "pool", "compute", "")
		w.WriteHeader(http.StatusOK)
	})

	// Sampled request: a fresh ID is minted and echoed.
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET", "/v1/route?src=1&dst=2", nil))
	id := rec.Header().Get(Header)
	if id == "" {
		t.Fatal("sampled request did not echo a trace ID")
	}
	v, ok := o.Tracer.Get(id)
	if !ok || v.Endpoint != "/route" || v.Status != 200 {
		t.Fatalf("stored trace %+v, %v", v, ok)
	}
	if len(v.Spans) != 1 || v.Spans[0].Layer != "pool" {
		t.Fatalf("handler span not recorded: %+v", v.Spans)
	}

	// Propagated ID: adopted verbatim, stored under the same ID.
	req := httptest.NewRequest("GET", "/v1/route", nil)
	req.Header.Set(Header, "front-door-id-1")
	rec = httptest.NewRecorder()
	h(rec, req)
	if rec.Header().Get(Header) != "front-door-id-1" {
		t.Fatalf("propagated ID not echoed: %q", rec.Header().Get(Header))
	}
	if _, ok := o.Tracer.Get("front-door-id-1"); !ok {
		t.Fatal("propagated trace not stored under its ID")
	}
}
