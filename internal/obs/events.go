package obs

import (
	"sort"
	"sync"
	"time"
)

// Event is one entry of the in-memory event journal: a topology
// swap, a shard ejection or re-admission, or a fault transition.
type Event struct {
	Seq    uint64 `json:"seq"`
	UnixNs int64  `json:"unixNs"`
	Kind   string `json:"kind"`
	Detail string `json:"detail,omitempty"`
}

// Journal is a bounded in-memory event log served on /v1/events.
// When full, the oldest entries are dropped; per-kind lifetime
// counts stay monotonic for metrics.
type Journal struct {
	mu     sync.Mutex
	buf    []Event
	next   int
	filled bool
	seq    uint64
	counts map[string]uint64
}

// NewJournal returns a journal holding up to size events (minimum 1).
func NewJournal(size int) *Journal {
	if size < 1 {
		size = 1
	}
	return &Journal{buf: make([]Event, size), counts: make(map[string]uint64)}
}

// Record appends one event. Nil-safe.
func (j *Journal) Record(kind, detail string) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.seq++
	j.buf[j.next] = Event{Seq: j.seq, UnixNs: time.Now().UnixNano(),
		Kind: kind, Detail: detail}
	j.next++
	if j.next == len(j.buf) {
		j.next, j.filled = 0, true
	}
	j.counts[kind]++
	j.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (j *Journal) Events() []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Event, 0, len(j.buf))
	if j.filled {
		out = append(out, j.buf[j.next:]...)
	}
	out = append(out, j.buf[:j.next]...)
	return out
}

// CountFamily renders the monotonic per-kind event counts as a
// counter family.
func (j *Journal) CountFamily() Family {
	f := Family{Name: MetricEventsTotal, Type: "counter",
		Help: "journal events recorded, by kind"}
	if j == nil {
		return f
	}
	j.mu.Lock()
	kinds := make([]string, 0, len(j.counts))
	for k := range j.counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		f.Points = append(f.Points, Point{
			Labels: []Label{{"kind", k}}, Value: float64(j.counts[k])})
	}
	j.mu.Unlock()
	return f
}
