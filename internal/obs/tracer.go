package obs

import (
	crand "crypto/rand"
	"encoding/binary"
	"sync/atomic"
)

// Tracer owns the sampling policy and the trace ring for one serving
// tier. The sampling decision is one atomic add and a modulo; an
// incoming propagated ID forces tracing regardless of sampling so a
// front-door-sampled request is traced on every shard it touches.
type Tracer struct {
	ring    *Ring
	sampleN uint64 // trace 1 in sampleN requests; 0 = headers only
	ctr     atomic.Uint64
	idCtr   atomic.Uint64
	sampled atomic.Uint64
}

// NewTracer returns a tracer with a ring of ringSize traces (0:
// 1024) sampling 1 in sampleN requests (0: headers only — traces are
// still honored when a propagated ID arrives).
func NewTracer(ringSize, sampleN int) *Tracer {
	if ringSize <= 0 {
		ringSize = 1024
	}
	t := &Tracer{ring: NewRing(ringSize)}
	if sampleN > 0 {
		t.sampleN = uint64(sampleN)
	}
	var seed [8]byte
	if _, err := crand.Read(seed[:]); err == nil {
		t.idCtr.Store(binary.LittleEndian.Uint64(seed[:]))
	}
	return t
}

// Begin decides whether this request is traced. A valid propagated
// ID forces a trace under that ID; otherwise the request is sampled
// 1-in-N. Returns nil when untraced.
func (t *Tracer) Begin(propagated string) *Trace {
	if t == nil {
		return nil
	}
	if validID(propagated) {
		t.sampled.Add(1)
		return newTrace(propagated)
	}
	if t.sampleN == 0 || t.ctr.Add(1)%t.sampleN != 0 {
		return nil
	}
	t.sampled.Add(1)
	return newTrace(t.newID())
}

// Store publishes a finished trace into the ring.
func (t *Tracer) Store(tr *Trace) {
	if t == nil || tr == nil {
		return
	}
	t.ring.Store(tr)
}

// Get returns the stored trace with the given ID.
func (t *Tracer) Get(id string) (TraceView, bool) {
	if t == nil {
		return TraceView{}, false
	}
	return t.ring.Get(id)
}

// Recent returns up to k stored traces, newest first.
func (t *Tracer) Recent(k int) []TraceView {
	if t == nil {
		return nil
	}
	return t.ring.Recent(k)
}

// Sampled returns the number of traces begun (sampled or forced).
func (t *Tracer) Sampled() uint64 {
	if t == nil {
		return 0
	}
	return t.sampled.Load()
}

// newID mints a 16-hex-char request ID from a crypto-seeded
// splitmix64 sequence: unique per process, collision-unlikely across
// a fleet, and cheap (no syscall per ID).
func (t *Tracer) newID() string {
	x := t.idCtr.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	const hexdigits = "0123456789abcdef"
	var buf [16]byte
	for i := 15; i >= 0; i-- {
		buf[i] = hexdigits[x&0xf]
		x >>= 4
	}
	return string(buf[:])
}

// validID bounds what a propagated trace ID may look like: 1-64
// characters of [A-Za-z0-9_-]. Anything else is treated as absent so
// a hostile header cannot smuggle bytes into logs or response
// headers.
func validID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c >= '0' && c <= '9', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}
