package obs

// Metric name registry. Every exported series name lives here as a
// constant so the metricnames analyzer can pin the set in
// lint/metrics.txt: adding a series is a deliberate, reviewed act,
// and a renamed series fails lint until the registry is regenerated
// (go run ./cmd/crlint -write-metrics ./...).
const (
	// Request-level families, shared by routed and routefront.
	MetricRequestsTotal        = "compactroute_requests_total"
	MetricRequestLatency       = "compactroute_request_latency_seconds"
	MetricRequestLatencyWindow = "compactroute_request_latency_window_seconds"
	MetricRouteStretch         = "compactroute_route_stretch"
	MetricTracesSampledTotal   = "compactroute_traces_sampled_total"
	MetricEventsTotal          = "compactroute_events_total"

	// Shard (routed) pool and topology families.
	MetricPoolRequestsTotal  = "compactroute_pool_requests_total"
	MetricPoolHitsTotal      = "compactroute_pool_cache_hits_total"
	MetricPoolMissesTotal    = "compactroute_pool_cache_misses_total"
	MetricPoolCoalescedTotal = "compactroute_pool_coalesced_total"
	MetricPoolErrorsTotal    = "compactroute_pool_errors_total"
	MetricPoolRejectedTotal  = "compactroute_pool_rejected_total"
	MetricPoolPurgesTotal    = "compactroute_pool_cache_purges_total"
	MetricPoolInflight       = "compactroute_pool_inflight"
	MetricPoolCacheEntries   = "compactroute_pool_cache_entries"
	MetricPoolCacheCapacity  = "compactroute_pool_cache_capacity"
	MetricPoolWorkers        = "compactroute_pool_workers"

	MetricTopologyVersion    = "compactroute_topology_version"
	MetricMutationsTotal     = "compactroute_mutations_applied_total"
	MetricMutationsPending   = "compactroute_mutations_pending"
	MetricSwapsTotal         = "compactroute_swaps_total"
	MetricSwapPauseSeconds   = "compactroute_swap_pause_seconds"
	MetricRebuildWallSeconds = "compactroute_rebuild_wall_seconds"
	MetricFaultDownNodes     = "compactroute_fault_down_nodes"
	MetricFaultDownEdges     = "compactroute_fault_down_edges"
	MetricFaultDamped        = "compactroute_fault_damped"

	// Front-door (routefront) cluster families.
	MetricClusterRoutesTotal       = "compactroute_cluster_routes_total"
	MetricClusterProxiedTotal      = "compactroute_cluster_proxied_total"
	MetricClusterScatteredTotal    = "compactroute_cluster_scattered_total"
	MetricClusterReversedTotal     = "compactroute_cluster_reversed_total"
	MetricClusterFailoversTotal    = "compactroute_cluster_failovers_total"
	MetricClusterEjectionsTotal    = "compactroute_cluster_ejections_total"
	MetricClusterReadmissionsTotal = "compactroute_cluster_readmissions_total"
	MetricClusterSkewsTotal        = "compactroute_cluster_skews_total"
	MetricClusterSwapsTotal        = "compactroute_cluster_swaps_total"
	MetricClusterCutoverSeconds    = "compactroute_cluster_cutover_seconds"
	MetricClusterShards            = "compactroute_cluster_shards"
	MetricClusterShardsHealthy     = "compactroute_cluster_shards_healthy"

	// Per-shard series re-exported by the front-door with a shard
	// label, aggregated from each shard's /v1/stats at scrape time.
	MetricShardUp              = "compactroute_shard_up"
	MetricShardRequestsTotal   = "compactroute_shard_requests_total"
	MetricShardHitsTotal       = "compactroute_shard_cache_hits_total"
	MetricShardTopologyVersion = "compactroute_shard_topology_version"
)
