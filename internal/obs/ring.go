package obs

import "sync/atomic"

// Ring is a fixed-size lock-free trace buffer. Writers claim a slot
// with one atomic add and publish with one atomic pointer store;
// readers snapshot slots with atomic loads. Old traces are
// overwritten in FIFO order — the ring is a flight recorder, not an
// archive.
type Ring struct {
	slots []atomic.Pointer[Trace]
	next  atomic.Uint64
}

// NewRing returns a ring holding up to size traces (minimum 1).
func NewRing(size int) *Ring {
	if size < 1 {
		size = 1
	}
	return &Ring{slots: make([]atomic.Pointer[Trace], size)}
}

// Store publishes a finished trace, evicting the oldest if full.
func (r *Ring) Store(tr *Trace) {
	if r == nil || tr == nil {
		return
	}
	i := (r.next.Add(1) - 1) % uint64(len(r.slots))
	r.slots[i].Store(tr)
}

// Get returns the newest stored trace with the given ID.
func (r *Ring) Get(id string) (TraceView, bool) {
	if r == nil || id == "" {
		return TraceView{}, false
	}
	var best *Trace
	var bestAge uint64
	n := r.next.Load()
	for i := range r.slots {
		tr := r.slots[i].Load()
		if tr == nil || tr.id != id {
			continue
		}
		// Prefer the most recently stored duplicate (age = slots
		// since it was written, derived from slot index vs cursor).
		age := (n - uint64(i)) % uint64(len(r.slots))
		if best == nil || age < bestAge {
			best, bestAge = tr, age
		}
	}
	if best == nil {
		return TraceView{}, false
	}
	return best.View(), true
}

// Recent returns up to k stored traces, newest first.
func (r *Ring) Recent(k int) []TraceView {
	if r == nil || k <= 0 {
		return nil
	}
	size := uint64(len(r.slots))
	n := r.next.Load()
	out := make([]TraceView, 0, k)
	for off := uint64(1); off <= size && len(out) < k; off++ {
		tr := r.slots[(n+size-off)%size].Load()
		if tr != nil {
			out = append(out, tr.View())
		}
	}
	return out
}
