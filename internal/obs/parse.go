package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ParsedPoint is one sample line as read back by ParseText.
type ParsedPoint struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParsedFamily is one family as read back by ParseText.
type ParsedFamily struct {
	Name   string
	Help   string
	Type   string
	Points []ParsedPoint
}

// ParseText parses Prometheus text exposition format strictly: every
// sample must follow a TYPE line for its family, names must be legal,
// values must parse, and histogram bucket counts must be cumulative
// with the +Inf bucket equal to _count. It exists so tests (and the
// CI smoke) can pin that /v1/metrics stays machine-readable.
func ParseText(data string) (map[string]*ParsedFamily, error) {
	fams := make(map[string]*ParsedFamily)
	var cur *ParsedFamily
	for i, line := range strings.Split(data, "\n") {
		ln := i + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, err := parseComment(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", ln, err)
			}
			switch kind {
			case "HELP":
				if f := fams[name]; f != nil && f.Help != "" {
					return nil, fmt.Errorf("line %d: duplicate HELP for %s", ln, name)
				}
				if fams[name] == nil {
					fams[name] = &ParsedFamily{Name: name}
				}
				fams[name].Help = rest
			case "TYPE":
				switch rest {
				case "counter", "gauge", "summary", "histogram", "untyped":
				default:
					return nil, fmt.Errorf("line %d: bad TYPE %q", ln, rest)
				}
				if fams[name] == nil {
					fams[name] = &ParsedFamily{Name: name}
				}
				if fams[name].Type != "" {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %s", ln, name)
				}
				fams[name].Type = rest
				cur = fams[name]
			}
			continue
		}
		p, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", ln, err)
		}
		if cur == nil || !nameInFamily(p.Name, cur) {
			return nil, fmt.Errorf("line %d: sample %s outside its family's TYPE block", ln, p.Name)
		}
		cur.Points = append(cur.Points, p)
	}
	for _, f := range fams {
		if f.Type == "histogram" {
			if err := checkHistogram(f); err != nil {
				return nil, fmt.Errorf("family %s: %v", f.Name, err)
			}
		}
	}
	return fams, nil
}

func parseComment(line string) (kind, name, rest string, err error) {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || fields[0] != "#" {
		return "", "", "", fmt.Errorf("malformed comment %q", line)
	}
	kind = fields[1]
	if kind != "HELP" && kind != "TYPE" {
		return "", "", "", fmt.Errorf("unknown comment kind %q", kind)
	}
	name = fields[2]
	if !validMetricName(name) {
		return "", "", "", fmt.Errorf("bad metric name %q", name)
	}
	if len(fields) == 4 {
		rest = fields[3]
	}
	return kind, name, rest, nil
}

func parseSample(line string) (ParsedPoint, error) {
	p := ParsedPoint{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return p, fmt.Errorf("malformed sample %q", line)
	} else {
		p.Name = rest[:i]
		rest = rest[i:]
	}
	if !validMetricName(p.Name) {
		return p, fmt.Errorf("bad sample name %q", p.Name)
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return p, fmt.Errorf("unterminated labels in %q", line)
		}
		if err := parseLabels(rest[1:end], p.Labels); err != nil {
			return p, err
		}
		rest = rest[end+1:]
	}
	rest = strings.TrimPrefix(rest, " ")
	if rest == "" || strings.ContainsAny(rest, " \t") {
		return p, fmt.Errorf("malformed value in %q", line)
	}
	v, err := parseValue(rest)
	if err != nil {
		return p, err
	}
	p.Value = v
	return p, nil
}

func parseLabels(s string, into map[string]string) error {
	for s != "" {
		eq := strings.Index(s, "=")
		if eq < 0 {
			return fmt.Errorf("malformed label pair %q", s)
		}
		name := s[:eq]
		if !validLabelName(name) {
			return fmt.Errorf("bad label name %q", name)
		}
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return fmt.Errorf("unquoted label value after %q", name)
		}
		s = s[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(s[i])
				}
				continue
			}
			if c == '"' {
				if _, ok := into[name]; ok {
					return fmt.Errorf("duplicate label %q", name)
				}
				into[name] = val.String()
				s = s[i+1:]
				closed = true
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			return fmt.Errorf("unterminated label value for %q", name)
		}
		s = strings.TrimPrefix(s, ",")
	}
	return nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad value %q", s)
	}
	return v, nil
}

func nameInFamily(sample string, f *ParsedFamily) bool {
	if sample == f.Name {
		return f.Type != "histogram" // histograms expose only suffixed samples
	}
	switch f.Type {
	case "histogram":
		return sample == f.Name+"_bucket" || sample == f.Name+"_sum" || sample == f.Name+"_count"
	case "summary":
		return sample == f.Name+"_sum" || sample == f.Name+"_count"
	}
	return false
}

// checkHistogram verifies cumulative bucket counts per label set and
// that the +Inf bucket matches _count.
func checkHistogram(f *ParsedFamily) error {
	type series struct {
		les    []float64
		counts []float64
		count  float64
		hasCnt bool
	}
	byKey := map[string]*series{}
	keyOf := func(labels map[string]string) string {
		names := make([]string, 0, len(labels))
		for n := range labels {
			if n != "le" {
				names = append(names, n)
			}
		}
		sort.Strings(names)
		var b strings.Builder
		for _, n := range names {
			fmt.Fprintf(&b, "%s=%q,", n, labels[n])
		}
		return b.String()
	}
	for _, p := range f.Points {
		k := keyOf(p.Labels)
		s := byKey[k]
		if s == nil {
			s = &series{}
			byKey[k] = s
		}
		switch p.Name {
		case f.Name + "_bucket":
			le, err := parseValue(p.Labels["le"])
			if err != nil {
				return fmt.Errorf("bad le label: %v", err)
			}
			s.les = append(s.les, le)
			s.counts = append(s.counts, p.Value)
		case f.Name + "_count":
			s.count, s.hasCnt = p.Value, true
		}
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		s := byKey[k]
		for i := 1; i < len(s.counts); i++ {
			if s.les[i] < s.les[i-1] || s.counts[i] < s.counts[i-1] {
				return fmt.Errorf("series {%s}: buckets not cumulative", k)
			}
		}
		if n := len(s.counts); n > 0 {
			if !math.IsInf(s.les[n-1], 1) {
				return fmt.Errorf("series {%s}: missing +Inf bucket", k)
			}
			if s.hasCnt && s.counts[n-1] != s.count {
				return fmt.Errorf("series {%s}: +Inf bucket %v != count %v", k, s.counts[n-1], s.count)
			}
		}
	}
	return nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
