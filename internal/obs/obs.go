// Package obs is the serving tier's observability layer: request
// tracing with per-layer spans and hop-level route paths, hand-rolled
// Prometheus text exposition, a bounded event journal, a
// threshold-gated slow-query log, and the pprof debug handler. It is
// stdlib-only and import-light so every serving package (serve,
// server, cluster, sim, client) can depend on it without cycles.
//
// The hot-path contract: recording is free when a request is not
// traced. The sampling decision is one atomic add and a modulo at the
// HTTP boundary; untraced requests carry no trace in their context,
// so FromContext returns nil and every recording helper returns
// immediately. The ctx-based helpers (Mark, SpanSince, SpanN,
// FromContext) are //go:noinline so their internals never attribute
// heap-escape sites to the budgeted hot-path functions that call
// them (see lint/hotpath.budget).
package obs

// Header is the trace-propagation HTTP header. The front-door mints
// an ID and sets it on every shard leg; a shard that receives the
// header traces the request unconditionally under that ID so the
// front-door can later merge per-shard views of the same request.
const Header = "X-Compactroute-Trace"
