package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// SlowEntry is one JSON line of the slow-query log.
type SlowEntry struct {
	UnixNs   int64  `json:"unixNs"`
	TraceID  string `json:"traceId,omitempty"`
	Endpoint string `json:"endpoint"`
	Query    string `json:"query,omitempty"`
	Status   int    `json:"status"`
	DurNs    int64  `json:"durNs"`
	Reason   string `json:"reason"`
}

// SlowLog writes slow, refused, and divergent requests as JSON lines
// with their trace IDs. A request is logged when its duration meets
// the threshold or its status is 5xx (refused, saturated, divergent,
// unreachable).
type SlowLog struct {
	threshold time.Duration
	mu        sync.Mutex
	enc       *json.Encoder
}

// NewSlowLog returns a slow log writing to w with the given
// threshold (0: 100ms). A nil w disables the log — methods on a nil
// *SlowLog are no-ops.
func NewSlowLog(w io.Writer, threshold time.Duration) *SlowLog {
	if w == nil {
		return nil
	}
	if threshold <= 0 {
		threshold = 100 * time.Millisecond
	}
	return &SlowLog{threshold: threshold, enc: json.NewEncoder(w)}
}

// Observe logs the request if it qualifies.
func (l *SlowLog) Observe(endpoint, query, traceID string, status int, dur time.Duration) {
	if l == nil {
		return
	}
	var reason string
	switch {
	case status >= 500:
		reason = "refused"
	case dur >= l.threshold:
		reason = "slow"
	default:
		return
	}
	e := SlowEntry{
		UnixNs:   time.Now().UnixNano(),
		TraceID:  traceID,
		Endpoint: endpoint,
		Query:    query,
		Status:   status,
		DurNs:    dur.Nanoseconds(),
		Reason:   reason,
	}
	l.mu.Lock()
	_ = l.enc.Encode(e)
	l.mu.Unlock()
}
