package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"

	"compactroute/internal/stats"
)

// Label is one metric dimension.
type Label struct {
	Name  string
	Value string
}

// Point is one sample line of a family. Suffix is appended to the
// family name ("_bucket", "_sum", "_count", or empty for plain
// counter/gauge samples).
type Point struct {
	Suffix string
	Labels []Label
	Value  float64
}

// Family is one metric family in the exposition: a name, HELP text,
// TYPE (counter, gauge, summary, histogram), and its sample points.
type Family struct {
	Name   string
	Help   string
	Type   string
	Points []Point
}

// Counter builds a single-sample counter family.
func Counter(name, help string, v float64, labels ...Label) Family {
	return Family{Name: name, Help: help, Type: "counter",
		Points: []Point{{Labels: labels, Value: v}}}
}

// Gauge builds a single-sample gauge family.
func Gauge(name, help string, v float64, labels ...Label) Family {
	return Family{Name: name, Help: help, Type: "gauge",
		Points: []Point{{Labels: labels, Value: v}}}
}

// WriteText renders families in the Prometheus text exposition
// format (version 0.0.4). Output order is exactly the family order
// given — callers build families deterministically so scrapes diff
// cleanly.
func WriteText(w io.Writer, fams []Family) error {
	var b strings.Builder
	for _, f := range fams {
		if len(f.Points) == 0 {
			continue
		}
		b.Reset()
		b.WriteString("# HELP ")
		b.WriteString(f.Name)
		b.WriteByte(' ')
		b.WriteString(escapeHelp(f.Help))
		b.WriteString("\n# TYPE ")
		b.WriteString(f.Name)
		b.WriteByte(' ')
		b.WriteString(f.Type)
		b.WriteByte('\n')
		for _, p := range f.Points {
			b.WriteString(f.Name)
			b.WriteString(p.Suffix)
			if len(p.Labels) > 0 {
				b.WriteByte('{')
				for i, l := range p.Labels {
					if i > 0 {
						b.WriteByte(',')
					}
					b.WriteString(l.Name)
					b.WriteString(`="`)
					b.WriteString(escapeLabel(l.Value))
					b.WriteByte('"')
				}
				b.WriteByte('}')
			}
			b.WriteByte(' ')
			b.WriteString(formatValue(p.Value))
			b.WriteByte('\n')
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// StretchBounds are the fixed upper bounds of the per-kind stretch
// histogram. Stretch is ≥ 1 by construction, and every scheme in the
// registry guarantees ≤ 2k-1, so the tail stops at 8.
var StretchBounds = []float64{1.0, 1.05, 1.1, 1.25, 1.5, 2, 3, 5, 8}

// Hist is a fixed-bound cumulative histogram. Counts are monotonic
// for the life of the process, making it a well-formed Prometheus
// histogram.
type Hist struct {
	bounds []float64
	mu     sync.Mutex
	counts []uint64
	count  uint64
	sum    float64
}

// NewHist returns a histogram over the given sorted upper bounds.
func NewHist(bounds []float64) *Hist {
	return &Hist{bounds: bounds, counts: make([]uint64, len(bounds))}
}

// Observe adds one observation.
func (h *Hist) Observe(v float64) {
	h.mu.Lock()
	for i, ub := range h.bounds {
		if v <= ub {
			h.counts[i]++
		}
	}
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// Points renders the histogram's cumulative buckets plus _sum and
// _count, each carrying the given labels.
func (h *Hist) Points(labels []Label) []Point {
	h.mu.Lock()
	counts := append([]uint64(nil), h.counts...)
	count, sum := h.count, h.sum
	h.mu.Unlock()
	pts := make([]Point, 0, len(counts)+3)
	for i, ub := range h.bounds {
		pts = append(pts, Point{Suffix: "_bucket",
			Labels: append(append([]Label(nil), labels...), Label{"le", formatValue(ub)}),
			Value:  float64(counts[i])})
	}
	pts = append(pts, Point{Suffix: "_bucket",
		Labels: append(append([]Label(nil), labels...), Label{"le", "+Inf"}),
		Value:  float64(count)})
	pts = append(pts, Point{Suffix: "_sum", Labels: labels, Value: sum})
	pts = append(pts, Point{Suffix: "_count", Labels: labels, Value: float64(count)})
	return pts
}

// Window is a bounded sliding window of recent observations with
// monotonic lifetime count and sum. Quantiles and display buckets
// are computed over the window via stats.Sample at scrape time.
type Window struct {
	mu     sync.Mutex
	buf    []float64
	n      int
	filled bool
	count  uint64
	sum    float64
}

const windowSize = 1024

// Observe adds one observation to the window.
func (w *Window) Observe(v float64) {
	w.mu.Lock()
	if w.buf == nil {
		w.buf = make([]float64, windowSize)
	}
	w.buf[w.n] = v
	w.n++
	if w.n == len(w.buf) {
		w.n, w.filled = 0, true
	}
	w.count++
	w.sum += v
	w.mu.Unlock()
}

// Snapshot returns the windowed observations (unordered) plus the
// lifetime count and sum.
func (w *Window) Snapshot() (xs []float64, count uint64, sum float64) {
	w.mu.Lock()
	if w.filled {
		xs = append([]float64(nil), w.buf...)
	} else {
		xs = append([]float64(nil), w.buf[:w.n]...)
	}
	count, sum = w.count, w.sum
	w.mu.Unlock()
	return xs, count, sum
}

// Metrics is the live per-request accumulator a serving tier feeds
// from its HTTP middleware: status-class counters and latency
// windows per endpoint, plus a per-kind stretch histogram sampled
// from served routes.
type Metrics struct {
	mu        sync.Mutex
	endpoints map[string]*endpointStats
	stretch   map[string]*Hist
}

type endpointStats struct {
	classes map[string]uint64
	lat     *Window
}

// NewMetrics returns an empty accumulator.
func NewMetrics() *Metrics {
	return &Metrics{
		endpoints: make(map[string]*endpointStats),
		stretch:   make(map[string]*Hist),
	}
}

// StatusClass maps an HTTP status to its exposition class label.
func StatusClass(status int) string {
	switch {
	case status >= 200 && status < 300:
		return "2xx"
	case status >= 300 && status < 400:
		return "3xx"
	case status >= 400 && status < 500:
		return "4xx"
	case status >= 500 && status < 600:
		return "5xx"
	}
	return "other"
}

// ObserveRequest records one finished request.
func (m *Metrics) ObserveRequest(endpoint string, status int, seconds float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	ep := m.endpoints[endpoint]
	if ep == nil {
		ep = &endpointStats{classes: make(map[string]uint64), lat: &Window{}}
		m.endpoints[endpoint] = ep
	}
	ep.classes[StatusClass(status)]++
	m.mu.Unlock()
	ep.lat.Observe(seconds)
}

// ObserveStretch records the stretch of one served route with a
// known metric, labeled by scheme kind.
func (m *Metrics) ObserveStretch(kind string, stretch float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	h := m.stretch[kind]
	if h == nil {
		h = NewHist(StretchBounds)
		m.stretch[kind] = h
	}
	m.mu.Unlock()
	h.Observe(stretch)
}

// Families renders the request-level families: per-endpoint status
// counters, latency summaries (window quantiles over monotonic
// _sum/_count), windowed latency buckets via stats.Sample, and the
// per-kind stretch histogram. Map iteration is sorted so scrapes are
// deterministic.
func (m *Metrics) Families() []Family {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	epNames := make([]string, 0, len(m.endpoints))
	for name := range m.endpoints {
		epNames = append(epNames, name)
	}
	sort.Strings(epNames)
	eps := make([]*endpointStats, len(epNames))
	for i, name := range epNames {
		eps[i] = m.endpoints[name]
	}
	kinds := make([]string, 0, len(m.stretch))
	for kind := range m.stretch {
		kinds = append(kinds, kind)
	}
	sort.Strings(kinds)
	hists := make([]*Hist, len(kinds))
	for i, kind := range kinds {
		hists[i] = m.stretch[kind]
	}
	m.mu.Unlock()

	reqs := Family{Name: MetricRequestsTotal, Type: "counter",
		Help: "requests served, by endpoint and status class"}
	lat := Family{Name: MetricRequestLatency, Type: "summary",
		Help: "request latency: window quantiles over monotonic totals"}
	win := Family{Name: MetricRequestLatencyWindow, Type: "histogram",
		Help: fmt.Sprintf("request latency over the last %d requests (window buckets, not cumulative across scrapes)", windowSize)}
	for i, name := range epNames {
		ep := eps[i]
		m.mu.Lock()
		classes := make([]string, 0, len(ep.classes))
		for c := range ep.classes {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		counts := make([]uint64, len(classes))
		for j, c := range classes {
			counts[j] = ep.classes[c]
		}
		m.mu.Unlock()
		for j, c := range classes {
			reqs.Points = append(reqs.Points, Point{
				Labels: []Label{{"endpoint", name}, {"class", c}},
				Value:  float64(counts[j])})
		}
		xs, count, sum := ep.lat.Snapshot()
		var s stats.Sample
		for _, x := range xs {
			s.Add(x)
		}
		for _, q := range []float64{0.5, 0.95, 0.99} {
			v := math.NaN()
			if s.N() > 0 {
				v = s.Percentile(q * 100)
			}
			lat.Points = append(lat.Points, Point{
				Labels: []Label{{"endpoint", name}, {"quantile", formatValue(q)}},
				Value:  v})
		}
		lat.Points = append(lat.Points,
			Point{Suffix: "_sum", Labels: []Label{{"endpoint", name}}, Value: sum},
			Point{Suffix: "_count", Labels: []Label{{"endpoint", name}}, Value: float64(count)})
		if s.N() > 0 {
			cum := 0.0
			for _, bk := range s.Buckets(6) {
				cum += float64(bk.Count)
				win.Points = append(win.Points, Point{Suffix: "_bucket",
					Labels: []Label{{"endpoint", name}, {"le", formatValue(bk.Hi)}},
					Value:  cum})
			}
			win.Points = append(win.Points,
				Point{Suffix: "_bucket", Labels: []Label{{"endpoint", name}, {"le", "+Inf"}}, Value: float64(s.N())},
				Point{Suffix: "_sum", Labels: []Label{{"endpoint", name}}, Value: s.Mean() * float64(s.N())},
				Point{Suffix: "_count", Labels: []Label{{"endpoint", name}}, Value: float64(s.N())})
		}
	}
	stretch := Family{Name: MetricRouteStretch, Type: "histogram",
		Help: "stretch of served routes with a known metric, by scheme kind"}
	for i, kind := range kinds {
		stretch.Points = append(stretch.Points, hists[i].Points([]Label{{"kind", kind}})...)
	}
	return []Family{reqs, lat, win, stretch}
}
