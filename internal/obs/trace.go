package obs

import (
	"context"
	"sync"
	"time"
)

// Bounds on what one trace may accumulate. A trace that overflows
// keeps its first maxSpans spans / maxHops hops and sets Truncated —
// dropping the tail keeps the record bounded without losing the
// layers that ran first.
const (
	maxSpans = 64
	maxHops  = 512
)

// Span is one recorded layer event: either a point event (DurNs 0)
// or a timed span. N carries a layer-specific count (hops walked,
// shard index, blocked legs) so spans stay schema-free.
type Span struct {
	Layer   string `json:"layer"`
	Name    string `json:"name"`
	Detail  string `json:"detail,omitempty"`
	StartNs int64  `json:"startNs"`
	DurNs   int64  `json:"durNs,omitempty"`
	N       int64  `json:"n,omitempty"`
}

// HopStep is one forwarding decision of a scheme walk: the node the
// packet was at (external name) and the port it chose.
type HopStep struct {
	Node uint64 `json:"node"`
	Port int    `json:"port"`
}

// TraceView is the immutable JSON form of a finished (or in-flight)
// trace, as served on /v1/trace/{id}.
type TraceView struct {
	ID        string    `json:"id"`
	StartNs   int64     `json:"startNs"`
	DurNs     int64     `json:"durNs"`
	Endpoint  string    `json:"endpoint,omitempty"`
	Status    int       `json:"status,omitempty"`
	Spans     []Span    `json:"spans"`
	Path      []HopStep `json:"path,omitempty"`
	Truncated bool      `json:"truncated,omitempty"`
}

// Trace accumulates the spans and hop path of one sampled request.
// It is safe for concurrent use: the best-of-both reverse leg and
// scatter goroutines may record while the forward walk does. All
// recording methods are nil-safe so call sites never branch.
type Trace struct {
	id    string
	start time.Time

	mu        sync.Mutex
	spans     []Span
	path      []HopStep
	endpoint  string
	status    int
	durNs     int64
	truncated bool
}

func newTrace(id string) *Trace {
	// Preallocated capacities cover a typical request (a handful of
	// spans, a few dozen hops) so recording appends without growth
	// reallocations — the dominant allocation cost of a traced request.
	return &Trace{
		id:    id,
		start: time.Now(),
		spans: make([]Span, 0, 8),
		path:  make([]HopStep, 0, 32),
	}
}

// ID returns the trace's request ID.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Event records a point event for a layer.
//
//go:noinline
func (t *Trace) Event(layer, name, detail string) {
	if t == nil {
		return
	}
	t.record(Span{Layer: layer, Name: name, Detail: detail,
		StartNs: time.Since(t.start).Nanoseconds()})
}

// SpanSince records a timed span that began at start.
//
//go:noinline
func (t *Trace) SpanSince(layer, name, detail string, start time.Time) {
	if t == nil {
		return
	}
	t.record(Span{Layer: layer, Name: name, Detail: detail,
		StartNs: start.Sub(t.start).Nanoseconds(),
		DurNs:   time.Since(start).Nanoseconds()})
}

// SpanN records a timed span with a layer-specific count.
//
//go:noinline
func (t *Trace) SpanN(layer, name, detail string, start time.Time, n int64) {
	if t == nil {
		return
	}
	t.record(Span{Layer: layer, Name: name, Detail: detail,
		StartNs: start.Sub(t.start).Nanoseconds(),
		DurNs:   time.Since(start).Nanoseconds(), N: n})
}

// Hop records one forwarding decision of the scheme walk.
//
//go:noinline
func (t *Trace) Hop(node uint64, port int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.path) < maxHops {
		t.path = append(t.path, HopStep{Node: node, Port: port})
	} else {
		t.truncated = true
	}
	t.mu.Unlock()
}

func (t *Trace) record(s Span) {
	t.mu.Lock()
	if len(t.spans) < maxSpans {
		t.spans = append(t.spans, s)
	} else {
		t.truncated = true
	}
	t.mu.Unlock()
}

// Finish stamps the request's endpoint, HTTP status, and total
// duration. Recording after Finish is allowed (late goroutines) but
// the duration no longer moves.
func (t *Trace) Finish(endpoint string, status int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.endpoint = endpoint
	t.status = status
	t.durNs = time.Since(t.start).Nanoseconds()
	t.mu.Unlock()
}

// View snapshots the trace into its JSON form.
func (t *Trace) View() TraceView {
	if t == nil {
		return TraceView{}
	}
	t.mu.Lock()
	v := TraceView{
		ID:        t.id,
		StartNs:   t.start.UnixNano(),
		DurNs:     t.durNs,
		Endpoint:  t.endpoint,
		Status:    t.status,
		Spans:     append([]Span(nil), t.spans...),
		Path:      append([]HopStep(nil), t.path...),
		Truncated: t.truncated,
	}
	t.mu.Unlock()
	return v
}

// traceKey is the context key for the active trace.
type traceKey struct{}

// WithTrace returns a context carrying tr. Passing a nil tr
// deliberately shadows any outer trace — used to keep advisory legs
// (reverse walks, resolve fan-outs) from interleaving hops into the
// primary walk's path.
func WithTrace(ctx context.Context, tr *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, tr)
}

// FromContext returns the active trace, or nil when the request is
// not sampled. Noinline: budgeted hot-path functions call this and
// must not inherit its interface plumbing as escape sites.
//
//go:noinline
func FromContext(ctx context.Context) *Trace {
	tr, _ := ctx.Value(traceKey{}).(*Trace)
	return tr
}

// Mark records a point event on the context's trace, if any. This
// is the form budgeted hot-path functions use: one noinline call,
// value-typed arguments, no allocation when untraced.
//
//go:noinline
func Mark(ctx context.Context, layer, name, detail string) {
	if tr, _ := ctx.Value(traceKey{}).(*Trace); tr != nil {
		tr.Event(layer, name, detail)
	}
}

// SpanSince records a timed span on the context's trace, if any.
//
//go:noinline
func SpanSince(ctx context.Context, layer, name, detail string, start time.Time) {
	if tr, _ := ctx.Value(traceKey{}).(*Trace); tr != nil {
		tr.SpanSince(layer, name, detail, start)
	}
}

// SpanN records a timed, counted span on the context's trace, if any.
//
//go:noinline
func SpanN(ctx context.Context, layer, name, detail string, start time.Time, n int64) {
	if tr, _ := ctx.Value(traceKey{}).(*Trace); tr != nil {
		tr.SpanN(layer, name, detail, start, n)
	}
}
