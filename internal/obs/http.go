package obs

import (
	"net/http"
	"time"
)

// StatusRecorder captures the status code written by a handler.
type StatusRecorder struct {
	http.ResponseWriter
	Status int
}

// WriteHeader records the status and forwards it.
func (r *StatusRecorder) WriteHeader(code int) {
	r.Status = code
	r.ResponseWriter.WriteHeader(code)
}

// HTTP bundles one serving tier's observability sinks and wraps its
// handlers: mint or adopt a trace, record request metrics, and feed
// the slow log. Zero-value fields are allowed — a nil Tracer never
// traces, a nil Metrics and Slow never record.
type HTTP struct {
	Tracer  *Tracer
	Metrics *Metrics
	Slow    *SlowLog
}

// Observe wraps next with the per-request observability boundary for
// the given endpoint label.
func (h *HTTP) Observe(endpoint string, next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		tr := h.Tracer.Begin(r.Header.Get(Header))
		if tr != nil {
			w.Header().Set(Header, tr.ID())
			r = r.WithContext(WithTrace(r.Context(), tr))
		}
		sw := &StatusRecorder{ResponseWriter: w, Status: http.StatusOK}
		next(sw, r)
		dur := time.Since(start)
		h.Metrics.ObserveRequest(endpoint, sw.Status, dur.Seconds())
		if tr != nil {
			tr.Finish(endpoint, sw.Status)
			h.Tracer.Store(tr)
		}
		h.Slow.Observe(endpoint, r.URL.RawQuery, tr.ID(), sw.Status, dur)
	}
}
