package obs

import (
	"net/http"
	"net/http/pprof"
)

// DebugHandler returns the opt-in profiling mux served on a separate
// -debug-addr listener: the standard net/http/pprof surface, kept
// off the public serving port so profiles are reachable only where
// the operator binds them.
func DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
