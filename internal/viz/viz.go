// Package viz renders graphs, trees and routes as Graphviz DOT, the
// debugging lens for everything the routing schemes build: landmark
// trees, cover clusters, and the paths the phase router takes.
package viz

import (
	"bufio"
	"fmt"
	"io"

	"compactroute/internal/graph"
	"compactroute/internal/tree"
)

// GraphDOT writes g as an undirected DOT graph. Nodes show their
// display names; edges show weights.
func GraphDOT(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "graph G {")
	fmt.Fprintln(bw, "  node [shape=circle fontsize=10];")
	for u := graph.NodeID(0); int(u) < g.N(); u++ {
		fmt.Fprintf(bw, "  n%d [label=%q];\n", u, g.DisplayName(u))
	}
	for u := graph.NodeID(0); int(u) < g.N(); u++ {
		g.Neighbors(u, func(e graph.Edge) bool {
			if u < e.To {
				fmt.Fprintf(bw, "  n%d -- n%d [label=\"%g\"];\n", u, e.To, e.Weight)
			}
			return true
		})
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

// TreeDOT writes a rooted tree as a directed DOT graph (edges point
// from parents to children), with the root highlighted.
func TreeDOT(w io.Writer, t *tree.Tree) error {
	bw := bufio.NewWriter(w)
	g := t.Graph()
	fmt.Fprintln(bw, "digraph T {")
	fmt.Fprintln(bw, "  node [shape=circle fontsize=10];")
	for i := 0; i < t.Len(); i++ {
		attrs := ""
		if i == 0 {
			attrs = " style=filled fillcolor=gold"
		}
		fmt.Fprintf(bw, "  n%d [label=%q%s];\n", t.Node(i), g.DisplayName(t.Node(i)), attrs)
	}
	for i := 1; i < t.Len(); i++ {
		p := t.Parent(i)
		fmt.Fprintf(bw, "  n%d -> n%d [label=\"%g\"];\n", t.Node(p), t.Node(i), t.EdgeWeight(i))
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

// RouteDOT writes g with the given path highlighted: traversed edges
// bold red, the source and destination filled.
func RouteDOT(w io.Writer, g *graph.Graph, path []graph.NodeID) error {
	onPath := make(map[[2]graph.NodeID]bool, len(path))
	for i := 0; i+1 < len(path); i++ {
		a, b := path[i], path[i+1]
		if a > b {
			a, b = b, a
		}
		onPath[[2]graph.NodeID{a, b}] = true
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "graph R {")
	fmt.Fprintln(bw, "  node [shape=circle fontsize=10];")
	for u := graph.NodeID(0); int(u) < g.N(); u++ {
		attrs := ""
		if len(path) > 0 && u == path[0] {
			attrs = " style=filled fillcolor=palegreen"
		}
		if len(path) > 0 && u == path[len(path)-1] {
			attrs = " style=filled fillcolor=lightblue"
		}
		fmt.Fprintf(bw, "  n%d [label=%q%s];\n", u, g.DisplayName(u), attrs)
	}
	for u := graph.NodeID(0); int(u) < g.N(); u++ {
		g.Neighbors(u, func(e graph.Edge) bool {
			if u < e.To {
				a, b := u, e.To
				if onPath[[2]graph.NodeID{a, b}] {
					fmt.Fprintf(bw, "  n%d -- n%d [label=\"%g\" color=red penwidth=2];\n", u, e.To, e.Weight)
				} else {
					fmt.Fprintf(bw, "  n%d -- n%d [label=\"%g\" color=gray];\n", u, e.To, e.Weight)
				}
			}
			return true
		})
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
