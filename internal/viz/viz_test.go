package viz

import (
	"bytes"
	"strings"
	"testing"

	"compactroute/internal/gen"
	"compactroute/internal/graph"
	"compactroute/internal/sssp"
	"compactroute/internal/tree"
)

func TestGraphDOTStructure(t *testing.T) {
	g := gen.Ring(1, 5, gen.Unit())
	var buf bytes.Buffer
	if err := GraphDOT(&buf, g); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "graph G {") || !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Fatalf("malformed DOT:\n%s", out)
	}
	if strings.Count(out, " -- ") != g.M() {
		t.Fatalf("edge count %d, want %d", strings.Count(out, " -- "), g.M())
	}
	if strings.Count(out, "label=") < g.N()+g.M() {
		t.Fatal("missing labels")
	}
}

func TestTreeDOTStructure(t *testing.T) {
	g := gen.BalancedTree(2, 2, 3, gen.Unit())
	r := sssp.From(g, 0)
	tr, err := tree.FromSPT(g, 0, r.Parent)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := TreeDOT(&buf, tr); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, " -> ") != tr.Len()-1 {
		t.Fatalf("tree edges %d, want %d", strings.Count(out, " -> "), tr.Len()-1)
	}
	if !strings.Contains(out, "fillcolor=gold") {
		t.Fatal("root not highlighted")
	}
}

func TestRouteDOTHighlightsPath(t *testing.T) {
	g := gen.Path(3, 5, gen.Unit())
	path := []graph.NodeID{0, 1, 2}
	var buf bytes.Buffer
	if err := RouteDOT(&buf, g, path); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "color=red") != 2 {
		t.Fatalf("highlighted %d edges, want 2", strings.Count(out, "color=red"))
	}
	if !strings.Contains(out, "palegreen") || !strings.Contains(out, "lightblue") {
		t.Fatal("endpoints not marked")
	}
	// Non-path edges drawn gray.
	if strings.Count(out, "color=gray") != g.M()-2 {
		t.Fatalf("gray edges %d, want %d", strings.Count(out, "color=gray"), g.M()-2)
	}
}

func TestRouteDOTEmptyPath(t *testing.T) {
	g := gen.Path(4, 3, gen.Unit())
	var buf bytes.Buffer
	if err := RouteDOT(&buf, g, nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "color=red") {
		t.Fatal("empty path highlighted something")
	}
}

func TestLabeledNamesAppear(t *testing.T) {
	b := graph.NewBuilder()
	x := b.AddLabeled("gateway")
	y := b.AddLabeled("edge-1")
	b.AddEdge(x, y, 3)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := GraphDOT(&buf, g); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"gateway"`) {
		t.Fatal("labels not rendered")
	}
}
