// Package sim is the message-level routing substrate every scheme in
// this repository is evaluated on.
//
// A routing scheme is a distributed object: per-node local state plus
// a step function that, given the current node and the message header,
// either delivers, fails, or names an outgoing *port*. The engine owns
// the only global view — it resolves ports to edges, accumulates the
// traversed cost, and enforces that every hop crosses a real edge of
// the graph and that routes terminate. A scheme that peeked at global
// state could not cheat the cost accounting, and a scheme that emitted
// an invalid port is caught immediately.
package sim

import (
	"context"
	"fmt"

	"compactroute/internal/bitsize"
	"compactroute/internal/graph"
	"compactroute/internal/obs"
)

// Action is a router's per-step decision.
type Action uint8

const (
	// Forward crosses the port returned alongside.
	Forward Action = iota
	// Delivered means the current node is the destination.
	Delivered
	// Failed means the scheme gives up at the current node (a
	// correctness bug for the schemes in this repository; the engine
	// reports it rather than panicking so experiments can count it).
	Failed
)

// Header is a routing header in flight. Schemes attach their own state;
// the engine only ever asks for its size.
type Header interface {
	// Bits returns the current header size for accounting.
	Bits() bitsize.Bits
}

// Router is a distributed routing scheme.
type Router interface {
	// Name identifies the scheme in tables.
	Name() string
	// Begin prepares a header for a message from src to the node with
	// the given external name.
	Begin(src graph.NodeID, dstName uint64) (Header, error)
	// Step makes the local decision at x. It must consult only x's
	// local tables and the header.
	Step(x graph.NodeID, h Header) (Action, int, error)
}

// Result describes one simulated routing.
type Result struct {
	Delivered bool
	Cost      float64
	Hops      int
	// MaxHeaderBits is the largest header observed in flight.
	MaxHeaderBits bitsize.Bits
	// Path is the traversed node sequence (only when tracing).
	Path []graph.NodeID
}

// Engine drives routers over a fixed graph.
type Engine struct {
	g *graph.Graph
	// MaxHops aborts runaway routes; 0 means 64·n·(log n + 1).
	MaxHops int
	// Trace records full paths in results.
	Trace bool
}

// NewEngine returns an engine over g.
func NewEngine(g *graph.Graph) *Engine { return &Engine{g: g} }

// Graph returns the underlying graph.
func (e *Engine) Graph() *graph.Graph { return e.g }

func (e *Engine) hopCap() int {
	if e.MaxHops > 0 {
		return e.MaxHops
	}
	n := e.g.N()
	cap := 64 * n
	for m := n; m > 1; m /= 2 {
		cap += 64 * n
	}
	return cap
}

// Route delivers one message and accounts its cost.
func (e *Engine) Route(r Router, src graph.NodeID, dstName uint64) (Result, error) {
	return e.RouteCtx(context.Background(), r, src, dstName)
}

// RouteCtx is Route honoring cancellation: the hop loop checks ctx
// between steps, so a canceled context aborts a long multi-hop route
// promptly with a wrapped context error (errors.Is-matchable against
// context.Canceled / context.DeadlineExceeded) instead of walking to
// completion. Contexts that can never be canceled (context.Background)
// pay nothing.
func (e *Engine) RouteCtx(ctx context.Context, r Router, src graph.NodeID, dstName uint64) (Result, error) {
	h, err := r.Begin(src, dstName)
	if err != nil {
		return Result{}, fmt.Errorf("sim: %s: begin: %w", r.Name(), err)
	}
	res := Result{MaxHeaderBits: h.Bits()}
	if e.Trace {
		res.Path = append(res.Path, src)
	}
	cancelable := ctx.Done() != nil
	tr := obs.FromContext(ctx)
	cur := src
	cap := e.hopCap()
	for {
		if cancelable {
			if err := ctx.Err(); err != nil {
				return res, fmt.Errorf("sim: %s: canceled after %d hops: %w", r.Name(), res.Hops, err)
			}
		}
		act, port, err := r.Step(cur, h)
		if err != nil {
			return res, fmt.Errorf("sim: %s: step at %d: %w", r.Name(), cur, err)
		}
		switch act {
		case Delivered:
			if e.g.Name(cur) != dstName {
				return res, fmt.Errorf("sim: %s: delivered to %d (name %#x), want name %#x",
					r.Name(), cur, e.g.Name(cur), dstName)
			}
			res.Delivered = true
			return res, nil
		case Failed:
			return res, nil
		case Forward:
			if port < 0 || port >= e.g.Degree(cur) {
				return res, fmt.Errorf("sim: %s: invalid port %d at node %d", r.Name(), port, cur)
			}
			edge := e.g.EdgeAt(cur, port)
			if tr != nil {
				tr.Hop(e.g.Name(cur), port)
			}
			res.Cost += edge.Weight
			res.Hops++
			cur = edge.To
			if e.Trace {
				res.Path = append(res.Path, cur)
			}
			if b := h.Bits(); b > res.MaxHeaderBits {
				res.MaxHeaderBits = b
			}
			if res.Hops > cap {
				return res, fmt.Errorf("sim: %s: exceeded %d hops (livelock?)", r.Name(), cap)
			}
		default:
			return res, fmt.Errorf("sim: %s: unknown action %d", r.Name(), act)
		}
	}
}
