package sim

import (
	"strings"
	"testing"

	"compactroute/internal/bitsize"
	"compactroute/internal/gen"
	"compactroute/internal/graph"
)

// mockHeader carries a scripted decision list.
type mockHeader struct {
	steps []mockStep
	pos   int
	bits  bitsize.Bits
}

type mockStep struct {
	act  Action
	port int
}

func (h *mockHeader) Bits() bitsize.Bits { return h.bits }

// mockRouter replays its header's script.
type mockRouter struct {
	name  string
	plan  func(src graph.NodeID, dst uint64) []mockStep
	begin error
}

func (m *mockRouter) Name() string { return m.name }

func (m *mockRouter) Begin(src graph.NodeID, dst uint64) (Header, error) {
	if m.begin != nil {
		return nil, m.begin
	}
	return &mockHeader{steps: m.plan(src, dst), bits: 64}, nil
}

func (m *mockRouter) Step(x graph.NodeID, hh Header) (Action, int, error) {
	h := hh.(*mockHeader)
	if h.pos >= len(h.steps) {
		return Failed, 0, nil
	}
	s := h.steps[h.pos]
	h.pos++
	return s.act, s.port, nil
}

func TestEngineFollowsPortsAndAccountsCost(t *testing.T) {
	g := gen.Path(1, 4, gen.Uniform(2, 2.000001)) // weights ~2
	// Route 0→3 by walking ports toward the higher neighbor.
	r := &mockRouter{name: "walker", plan: func(src graph.NodeID, dst uint64) []mockStep {
		return []mockStep{
			{Forward, g.PortTo(0, 1)},
			{Forward, g.PortTo(1, 2)},
			{Forward, g.PortTo(2, 3)},
			{Delivered, 0},
		}
	}}
	e := NewEngine(g)
	e.Trace = true
	res, err := e.Route(r, 0, g.Name(3))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Delivered || res.Hops != 3 {
		t.Fatalf("result %+v", res)
	}
	if res.Cost < 5.9 || res.Cost > 6.1 {
		t.Fatalf("cost %v, want ~6", res.Cost)
	}
	if len(res.Path) != 4 || res.Path[3] != 3 {
		t.Fatalf("path %v", res.Path)
	}
	if res.MaxHeaderBits != 64 {
		t.Fatalf("header bits %d", res.MaxHeaderBits)
	}
}

func TestEngineRejectsInvalidPort(t *testing.T) {
	g := gen.Path(2, 3, gen.Unit())
	r := &mockRouter{name: "bad-port", plan: func(graph.NodeID, uint64) []mockStep {
		return []mockStep{{Forward, 99}}
	}}
	_, err := NewEngine(g).Route(r, 0, g.Name(2))
	if err == nil || !strings.Contains(err.Error(), "invalid port") {
		t.Fatalf("invalid port not caught: %v", err)
	}
}

func TestEngineRejectsWrongDelivery(t *testing.T) {
	g := gen.Path(3, 3, gen.Unit())
	// Claims delivery at the source, which is not the destination.
	r := &mockRouter{name: "liar", plan: func(graph.NodeID, uint64) []mockStep {
		return []mockStep{{Delivered, 0}}
	}}
	_, err := NewEngine(g).Route(r, 0, g.Name(2))
	if err == nil || !strings.Contains(err.Error(), "delivered to") {
		t.Fatalf("wrong delivery not caught: %v", err)
	}
}

func TestEngineCatchesLivelock(t *testing.T) {
	g := gen.Ring(4, 5, gen.Unit())
	// Forward forever around the ring.
	r := &mockRouter{name: "spinner", plan: func(graph.NodeID, uint64) []mockStep {
		steps := make([]mockStep, 100000)
		for i := range steps {
			steps[i] = mockStep{Forward, 0}
		}
		return steps
	}}
	e := NewEngine(g)
	e.MaxHops = 50
	_, err := e.Route(r, 0, g.Name(2))
	if err == nil || !strings.Contains(err.Error(), "hops") {
		t.Fatalf("livelock not caught: %v", err)
	}
}

func TestEngineFailedIsCleanNonDelivery(t *testing.T) {
	g := gen.Path(5, 3, gen.Unit())
	r := &mockRouter{name: "giver-upper", plan: func(graph.NodeID, uint64) []mockStep {
		return []mockStep{{Forward, g.PortTo(0, 1)}, {Failed, 0}}
	}}
	res, err := NewEngine(g).Route(r, 0, g.Name(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered || res.Hops != 1 {
		t.Fatalf("failed route reported wrong: %+v", res)
	}
}

func TestEngineBeginError(t *testing.T) {
	g := gen.Path(6, 2, gen.Unit())
	r := &mockRouter{name: "no-begin", begin: errMock}
	if _, err := NewEngine(g).Route(r, 0, g.Name(1)); err == nil {
		t.Fatal("begin error not propagated")
	}
}

var errMock = &mockError{}

type mockError struct{}

func (*mockError) Error() string { return "mock begin failure" }

func TestEngineSelfDelivery(t *testing.T) {
	g := gen.Path(7, 2, gen.Unit())
	r := &mockRouter{name: "self", plan: func(graph.NodeID, uint64) []mockStep {
		return []mockStep{{Delivered, 0}}
	}}
	res, err := NewEngine(g).Route(r, 1, g.Name(1))
	if err != nil || !res.Delivered || res.Cost != 0 {
		t.Fatalf("self delivery: %+v %v", res, err)
	}
}

func TestDefaultHopCapScalesWithN(t *testing.T) {
	small := NewEngine(gen.Path(8, 4, gen.Unit()))
	big := NewEngine(gen.Path(9, 400, gen.Unit()))
	if small.hopCap() >= big.hopCap() {
		t.Fatal("hop cap does not scale with n")
	}
	if small.hopCap() < 64 {
		t.Fatal("hop cap too small to be safe")
	}
}
