package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"time"

	"compactroute"
	"compactroute/client"
	"compactroute/internal/obs"
	"compactroute/internal/server"
)

// Handler returns the front-door HTTP surface. It mirrors a shard's
// /v1 routes, so the same client speaks to either tier:
//
//	GET  /v1/route          proxy or scatter-gather across the owners
//	GET  /v1/resolve        proxy to the source owner
//	GET  /v1/healthz        cluster status + per-shard health rows
//	GET  /v1/stats          front-door counters + per-shard stats
//	GET  /v1/metrics        Prometheus text: cluster + per-shard series
//	GET  /v1/trace/{id}     merged trace: front-door view + shard views
//	GET  /v1/traces/recent  newest stored front-door traces
//	GET  /v1/events         bounded journal: ejections, re-admissions, cut-overs
//	POST /v1/mutate         serialized fan-out to every healthy shard
//	POST /v1/rebuild        coordinated two-phase cut-over (always waits)
func (c *Cluster) Handler() http.Handler {
	mux := http.NewServeMux()
	// Every endpoint passes the observability boundary: trace minting
	// or adoption, per-endpoint status/latency metrics, slow log.
	o := &obs.HTTP{Tracer: c.tracer, Metrics: c.metrics, Slow: c.slow}
	for _, ep := range []struct {
		pattern string
		h       http.HandlerFunc
	}{
		{"GET /v1/route", c.handleRoute},
		{"GET /v1/resolve", c.handleResolve},
		{"GET /v1/healthz", c.handleHealthz},
		{"GET /v1/stats", c.handleStats},
		{"GET /v1/metrics", c.handleMetrics},
		{"GET /v1/trace/{id}", c.handleTrace},
		{"GET /v1/traces/recent", c.handleTracesRecent},
		{"GET /v1/events", c.handleEvents},
		{"POST /v1/mutate", c.handleMutate},
		{"POST /v1/rebuild", c.handleRebuild},
	} {
		_, path, _ := strings.Cut(ep.pattern, " ")
		mux.HandleFunc(ep.pattern, o.Observe(strings.TrimPrefix(path, "/v1"), ep.h))
	}
	return mux
}

// writeClusterError maps a cluster-path error onto HTTP: an API
// *Error from a shard passes through verbatim (a 422 at the shard is
// a 422 at the front-door), coordination failures are conflicts
// (409), shard data divergence is an internal error (500), a cluster
// with no healthy shard is retryable (503), and a transport failure
// the retries could not absorb is a bad gateway.
func writeClusterError(w http.ResponseWriter, err error) {
	var apiErr *client.Error
	switch {
	case errors.As(err, &apiErr):
		if apiErr.Status == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", "1")
		}
		server.HTTPError(w, apiErr.Status, "%s", apiErr.Message)
	case errors.Is(err, compactroute.ErrVersionSkew):
		server.HTTPError(w, http.StatusConflict, "%v", err)
	case errors.Is(err, ErrDivergence):
		// Shards contradicting each other on one version is a data
		// fault in the cluster, not a bad gateway or caller mistake.
		server.HTTPError(w, http.StatusInternalServerError, "%v", err)
	case errors.Is(err, ErrNoHealthyShard):
		w.Header().Set("Retry-After", "1")
		server.HTTPError(w, http.StatusServiceUnavailable, "%v", err)
	default:
		server.HTTPError(w, http.StatusBadGateway, "%v", err)
	}
}

func (c *Cluster) handleRoute(w http.ResponseWriter, r *http.Request) {
	src, err := server.ParseName(r.URL.Query().Get("src"))
	if err != nil {
		server.HTTPError(w, http.StatusBadRequest, "bad src: %v", err)
		return
	}
	dst, err := server.ParseName(r.URL.Query().Get("dst"))
	if err != nil {
		server.HTTPError(w, http.StatusBadRequest, "bad dst: %v", err)
		return
	}
	res, err := c.RouteByName(r.Context(), src, dst)
	if err != nil {
		writeClusterError(w, err)
		return
	}
	if res.Delivered && res.Stretch > 0 {
		c.metrics.ObserveStretch("cluster", res.Stretch)
	}
	server.WriteJSON(w, res)
}

func (c *Cluster) handleResolve(w http.ResponseWriter, r *http.Request) {
	src, err := server.ParseName(r.URL.Query().Get("src"))
	if err != nil {
		server.HTTPError(w, http.StatusBadRequest, "bad src: %v", err)
		return
	}
	dst, err := server.ParseName(r.URL.Query().Get("dst"))
	if err != nil {
		server.HTTPError(w, http.StatusBadRequest, "bad dst: %v", err)
		return
	}
	res, err := c.Resolve(r.Context(), src, dst)
	if err != nil {
		writeClusterError(w, err)
		return
	}
	server.WriteJSON(w, res)
}

// handleMutate accepts the same body as a shard (one mutation object
// or an array) and fans it out.
func (c *Cluster) handleMutate(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16<<20))
	if err != nil {
		server.HTTPError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	var muts []compactroute.Mutation
	trimmed := strings.TrimSpace(string(body))
	if strings.HasPrefix(trimmed, "[") {
		err = json.Unmarshal(body, &muts)
	} else {
		var m compactroute.Mutation
		if err = json.Unmarshal(body, &m); err == nil {
			muts = []compactroute.Mutation{m}
		}
	}
	if err != nil {
		server.HTTPError(w, http.StatusBadRequest, "bad mutation body: %v", err)
		return
	}
	if len(muts) == 0 {
		server.HTTPError(w, http.StatusBadRequest, "no mutations in body")
		return
	}
	reply, err := c.Mutate(r.Context(), muts...)
	if err != nil {
		writeClusterError(w, err)
		return
	}
	server.WriteJSON(w, reply)
}

// handleRebuild runs one coordinated cut-over. Unlike a shard's
// /v1/rebuild, the cluster form always waits: staging is synchronous
// and the commit needs the coordinator alive, so there is no async
// flavor to offer.
func (c *Cluster) handleRebuild(w http.ResponseWriter, r *http.Request) {
	v, pause, err := c.Rebuild(r.Context())
	if err != nil {
		writeClusterError(w, err)
		return
	}
	// The VersionInfo fields embed flat, so a client decoding a shard
	// rebuild reply (client.RebuildWait) decodes this one identically;
	// the cluster-only fields ride alongside.
	server.WriteJSON(w, struct {
		compactroute.VersionInfo
		Shards    int   `json:"shards"`
		CutoverNs int64 `json:"cutoverNs"`
	}{v, c.healthyCount(), int64(pause)})
}

func (c *Cluster) handleHealthz(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), 5*time.Second)
	defer cancel()
	status, rows := c.Health(ctx)
	server.WriteJSON(w, map[string]any{
		"status":  status,
		"shards":  rows,
		"healthy": c.healthyCount(),
	})
}

func (c *Cluster) handleStats(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), 5*time.Second)
	defer cancel()
	type shardStats struct {
		URL   string          `json:"url"`
		Stats json.RawMessage `json:"stats,omitempty"`
		Error string          `json:"error,omitempty"`
	}
	rows := make([]shardStats, len(c.shards))
	for i, s := range c.shards {
		rows[i] = shardStats{URL: s.url}
		st, err := s.c.Stats(ctx)
		if err != nil {
			rows[i].Error = err.Error()
			continue
		}
		rows[i].Stats = st
	}
	server.WriteJSON(w, map[string]any{
		"cluster": c.Stats(),
		"shards":  rows,
	})
}
