package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"compactroute/client"
	"compactroute/internal/obs"
	"compactroute/internal/server"
)

// handleMetrics serves the front-door scrape: request-level families
// from the middleware, the cluster coordination counters, and a
// per-shard block aggregated from each shard's /v1/stats at scrape
// time with a shard="<url>" label, so one scrape of the front-door
// sees the whole tier.
func (c *Cluster) handleMetrics(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), 5*time.Second)
	defer cancel()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := obs.WriteText(w, c.metricFamilies(ctx)); err != nil {
		c.logf("cluster: writing metrics: %v", err)
	}
}

// shardScrape is the slice of a shard's /v1/stats reply the per-shard
// series re-export (the embedded serve.Stats marshals with Go field
// names; the dynamic block is tagged).
type shardScrape struct {
	Requests uint64 `json:"Requests"`
	Hits     uint64 `json:"Hits"`
	Dynamic  *struct {
		Version uint64 `json:"version"`
	} `json:"dynamic"`
}

// metricFamilies assembles the scrape deterministically: fixed family
// order, shard points in configured shard order.
func (c *Cluster) metricFamilies(ctx context.Context) []obs.Family {
	st := c.Stats()
	fams := c.metrics.Families()
	fams = append(fams,
		obs.Counter(obs.MetricClusterRoutesTotal, "routing queries admitted by the front-door", float64(st.Routes)),
		obs.Counter(obs.MetricClusterProxiedTotal, "single-shard routes proxied straight through", float64(st.Proxied)),
		obs.Counter(obs.MetricClusterScatteredTotal, "cross-shard scatter-gathers merged", float64(st.Scattered)),
		obs.Counter(obs.MetricClusterReversedTotal, "scatters served by the advisory reverse walk", float64(st.Reversed)),
		obs.Counter(obs.MetricClusterFailoversTotal, "route retries after a shard ejection", float64(st.Failovers)),
		obs.Counter(obs.MetricClusterEjectionsTotal, "shards ejected for transport failures", float64(st.Ejections)),
		obs.Counter(obs.MetricClusterReadmissionsTotal, "ejected shards re-admitted by the health loop", float64(st.Readmissions)),
		obs.Counter(obs.MetricClusterSkewsTotal, "version skews observed across legs or stages", float64(st.SkewObserved)),
		obs.Counter(obs.MetricClusterSwapsTotal, "coordinated cut-overs completed", float64(st.Swaps)),
		obs.Family{Name: obs.MetricClusterCutoverSeconds, Type: "gauge",
			Help: "coordinated cut-over pause, last and lifetime max",
			Points: []obs.Point{
				{Labels: []obs.Label{{Name: "window", Value: "last"}}, Value: time.Duration(st.LastCutoverNs).Seconds()},
				{Labels: []obs.Label{{Name: "window", Value: "max"}}, Value: time.Duration(st.MaxCutoverNs).Seconds()},
			}},
		obs.Gauge(obs.MetricClusterShards, "shards configured", float64(st.Shards)),
		obs.Gauge(obs.MetricClusterShardsHealthy, "shards serving right now", float64(st.Healthy)),
	)
	// Per-shard series, labeled shard="<url>". The up gauge comes from
	// the front-door's own health bits; the rest are scraped from each
	// healthy shard's /v1/stats (an unreachable shard simply has no
	// points this scrape — up=0 already says why).
	up := obs.Family{Name: obs.MetricShardUp, Type: "gauge",
		Help: "1 if the front-door considers the shard healthy"}
	reqs := obs.Family{Name: obs.MetricShardRequestsTotal, Type: "counter",
		Help: "queries admitted by the shard's worker pool"}
	hits := obs.Family{Name: obs.MetricShardHitsTotal, Type: "counter",
		Help: "queries the shard served from its result cache"}
	vers := obs.Family{Name: obs.MetricShardTopologyVersion, Type: "gauge",
		Help: "topology version the shard is serving"}
	for _, s := range c.shards {
		lbl := []obs.Label{{Name: "shard", Value: s.url}}
		healthy := s.healthy.Load()
		v := 0.0
		if healthy {
			v = 1
		}
		up.Points = append(up.Points, obs.Point{Labels: lbl, Value: v})
		if !healthy {
			continue
		}
		raw, err := s.c.Stats(ctx)
		if err != nil {
			continue
		}
		var ss shardScrape
		if json.Unmarshal(raw, &ss) != nil {
			continue
		}
		reqs.Points = append(reqs.Points, obs.Point{Labels: lbl, Value: float64(ss.Requests)})
		hits.Points = append(hits.Points, obs.Point{Labels: lbl, Value: float64(ss.Hits)})
		if ss.Dynamic != nil {
			vers.Points = append(vers.Points, obs.Point{Labels: lbl, Value: float64(ss.Dynamic.Version)})
		}
	}
	fams = append(fams, up, reqs, hits, vers,
		obs.Counter(obs.MetricTracesSampledTotal, "requests traced (sampled or forced by a propagated ID)", float64(c.tracer.Sampled())),
		c.journal.CountFamily(),
	)
	return fams
}

// handleTrace merges the cluster-wide view of one traced request: the
// front-door's own stored trace plus each healthy shard's stored view
// under the same propagated ID. Shards that never saw the request (or
// whose ring evicted it) report a 404, which the merge renders as an
// absent trace rather than an error.
func (c *Cluster) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	type shardTrace struct {
		URL   string          `json:"url"`
		Trace json.RawMessage `json:"trace,omitempty"`
		Error string          `json:"error,omitempty"`
	}
	front, frontOK := c.tracer.Get(id)
	ctx, cancel := context.WithTimeout(r.Context(), 5*time.Second)
	defer cancel()
	found := frontOK
	rows := make([]shardTrace, 0, len(c.shards))
	for _, s := range c.shards {
		if !s.healthy.Load() {
			continue
		}
		row := shardTrace{URL: s.url}
		raw, err := s.c.Trace(ctx, id)
		switch {
		case err == nil:
			row.Trace = raw
			found = true
		case !client.IsStatus(err, http.StatusNotFound):
			row.Error = err.Error()
		}
		rows = append(rows, row)
	}
	if !found {
		server.HTTPError(w, http.StatusNotFound, "no stored trace %q on the front-door or any healthy shard", id)
		return
	}
	resp := map[string]any{"id": id, "shards": rows}
	if frontOK {
		resp["front"] = front
	}
	server.WriteJSON(w, resp)
}

// handleTracesRecent serves the newest front-door traces (?n=,
// default 32, capped at the ring size).
func (c *Cluster) handleTracesRecent(w http.ResponseWriter, r *http.Request) {
	n := 32
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			server.HTTPError(w, http.StatusBadRequest, "bad n: %q", q)
			return
		}
		n = v
	}
	traces := c.tracer.Recent(n)
	if traces == nil {
		traces = []obs.TraceView{}
	}
	server.WriteJSON(w, map[string]any{"traces": traces})
}

// handleEvents serves the bounded front-door journal: ejections,
// re-admissions, cut-overs — oldest first.
func (c *Cluster) handleEvents(w http.ResponseWriter, r *http.Request) {
	events := c.journal.Events()
	if events == nil {
		events = []obs.Event{}
	}
	server.WriteJSON(w, map[string]any{"events": events})
}
