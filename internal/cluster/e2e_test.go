package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"compactroute"
	"compactroute/client"
	"compactroute/internal/server"
)

// TestEndToEndClusterChurn is the acceptance run for the serving
// tier: two shards behind a front-door, a concurrent route replay
// that tolerates ZERO failures, 120 mutations fanned out in batches,
// a coordinated hot-swap every three batches. Afterwards both shards
// serve the same version, no skew was ever observed, and a strided
// sample of front-door answers — stretch included — is bit-identical
// to a cold single-process build of the final topology.
func TestEndToEndClusterChurn(t *testing.T) {
	const nodes = 110
	c, servers, _ := bootCluster(t, 2, nodes, time.Hour)
	front := httptest.NewServer(c.Handler())
	defer front.Close()
	fc := client.New(front.URL)
	ctx := context.Background()

	net := servers[0].Scheme().Network()
	g := net.Graph()
	muts, err := compactroute.GenerateMutations(net, 120, 21)
	if err != nil {
		t.Fatal(err)
	}

	// Concurrent replay over base names (present in every version),
	// entirely through the front-door: every answer must arrive and be
	// delivered, across mutation fan-outs, ejectionless health checks,
	// and four cut-overs.
	stop := make(chan struct{})
	var queries, failures atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wc := client.New(front.URL)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				src := g.Name(compactroute.NodeID((w*13 + i) % nodes))
				dst := g.Name(compactroute.NodeID((w*29 + i*7 + 1) % nodes))
				res, err := wc.RouteByName(ctx, src, dst)
				if err != nil || !res.Delivered {
					t.Logf("query %d→%d: %+v, %v", src, dst, res, err)
					failures.Add(1)
					return
				}
				queries.Add(1)
			}
		}(w)
	}

	// Churn: 120 mutations in batches of 10 through the front-door, a
	// coordinated rebuild every 3 batches (4 cut-overs total).
	applied := uint64(0)
	for b := 0; b < 12; b++ {
		mr, err := fc.Mutate(ctx, muts[b*10:(b+1)*10]...)
		if err != nil {
			t.Fatalf("mutate batch %d: %v", b, err)
		}
		applied += 10
		if mr.Seq != applied {
			t.Fatalf("mutate batch %d sealed at seq %d, want %d", b, mr.Seq, applied)
		}
		if (b+1)%3 == 0 {
			v, err := fc.RebuildWait(ctx) // front-door always coordinates
			if err != nil {
				t.Fatalf("coordinated rebuild after batch %d: %v", b, err)
			}
			if v.MutTo != applied {
				t.Fatalf("cut-over sealed at mutation %d, want %d", v.MutTo, applied)
			}
		}
	}
	// Let the replay observe the final version, then stop it.
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d of %d churn-time queries failed", failures.Load(), queries.Load()+failures.Load())
	}
	if queries.Load() == 0 {
		t.Fatal("no queries completed during churn")
	}

	// Both shards landed on the same version, through four coordinated
	// swaps, with no skew ever surfacing.
	for i, s := range servers {
		v, ok := s.Version()
		if !ok {
			t.Fatalf("shard %d not dynamic", i)
		}
		if v.ID != 4 || v.MutTo != 120 {
			t.Fatalf("shard %d at version %d (mutTo %d), want 4 (120)", i, v.ID, v.MutTo)
		}
	}
	st := c.Stats()
	if st.Swaps != 4 || st.SkewObserved != 0 {
		t.Fatalf("cluster stats after churn: %+v", st)
	}
	if st.LastCutoverNs <= 0 || st.MaxCutoverNs >= int64(time.Second) {
		t.Fatalf("cut-over pause out of range: last %v max %v",
			time.Duration(st.LastCutoverNs), time.Duration(st.MaxCutoverNs))
	}

	// Front-door answers match a cold single-process build of the
	// final topology — delivery, cost, hops, header bits, shortest
	// cost, and stretch — and carry the final version.
	finalNet, err := compactroute.ReplayNetwork(net, muts)
	if err != nil {
		t.Fatal(err)
	}
	finalNet.EnsureMetric()
	cold, err := compactroute.Build(finalNet, compactroute.Config{Kind: "fulltable", K: 2, Seed: 11, SFactor: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	fg := finalNet.Graph()
	checked, scattered := 0, 0
	for s := 0; s < fg.N(); s += 5 {
		for d := 1; d < fg.N(); d += 7 {
			src, dst := fg.Name(compactroute.NodeID(s)), fg.Name(compactroute.NodeID(d))
			want, err := cold.RouteByName(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			got, err := fc.RouteByName(ctx, src, dst)
			if err != nil {
				t.Fatalf("route %d→%d: %v", src, dst, err)
			}
			if got.Delivered != want.Delivered || got.Cost != want.Cost ||
				got.Hops != want.Hops || got.HeaderBits != want.HeaderBits ||
				got.ShortestCost != want.ShortestCost {
				t.Fatalf("route %d→%d diverged from cold build: cluster %+v cold %+v", src, dst, got, want)
			}
			// Stretch 0 on the wire for the degenerate self-route.
			if want.ShortestCost > 0 && got.Stretch != want.Stretch() {
				t.Fatalf("route %d→%d stretch %v, cold %v", src, dst, got.Stretch, want.Stretch())
			}
			if got.Version == nil || *got.Version != 4 {
				t.Fatalf("route %d→%d version %v, want 4", src, dst, got.Version)
			}
			if c.Owner(src) != c.Owner(dst) {
				scattered++
			}
			checked++
		}
	}
	if checked == 0 || scattered == 0 {
		t.Fatalf("cold-build sample too thin: %d checked, %d cross-shard", checked, scattered)
	}
}

// TestShardKillDuringFaultChurn is the resilience acceptance run: a
// three-shard cluster (front-door with the best-of-both reverse leg
// on) replays queries while a failure trace churns through the mutate
// fan-out, and one shard is killed mid-churn. Survivors must keep
// serving every query — delivered, or refused with the fault
// overlay's pinned 502, never anything else. The dead shard, revived
// with a short log, must stay ejected until it matches a healthy
// peer's version AND log position; caught up out-of-band, it must
// come back.
func TestShardKillDuringFaultChurn(t *testing.T) {
	const nodes = 90
	// Roomy interval: probeAll budgets ONE interval of context across
	// every shard's health check, and a tight budget under -race load
	// ejects healthy-but-slow shards. Ejection in this test rides the
	// mutate fan-out (immediate), not the probe, so the interval only
	// paces re-admission — and the white-box probe nudges below keep
	// that prompt.
	const healthEvery = 200 * time.Millisecond
	// Manual boot (not bootCluster): this front-door runs BestOfBoth,
	// so the advisory reverse leg is exercised under a live fault
	// overlay too.
	urls := make([]string, 3)
	servers := make([]*server.Server, 3)
	wraps := make([]*flaky, 3)
	for i := range urls {
		srv, err := server.New(shardConfig(nodes))
		if err != nil {
			t.Fatal(err)
		}
		srv.Start(t.Context())
		t.Cleanup(srv.Close)
		wraps[i] = &flaky{h: srv.Handler()}
		ts := httptest.NewServer(wraps[i])
		t.Cleanup(ts.Close)
		urls[i], servers[i] = ts.URL, srv
	}
	c, err := New(Options{Shards: urls, HealthEvery: healthEvery, BestOfBoth: true, Logf: discardLogf})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	t.Cleanup(c.Close)
	front := httptest.NewServer(c.Handler())
	defer front.Close()
	fc := client.New(front.URL)
	ctx := context.Background()

	net := servers[0].Scheme().Network()
	g := net.Graph()
	// Fail-only profile: the graph never changes, so every base name
	// resolves in every version and the replay needs no coordination
	// with the churn.
	trace, recovery, err := compactroute.GenerateFaultMutations(net, 40, 9,
		compactroute.FaultProfile{FailEdge: 3, FailNode: 1, Recover: 2})
	if err != nil {
		t.Fatal(err)
	}

	// Concurrent replay: every front-door answer is either delivered
	// or the overlay's honest 502 refusal. Transport errors, 409s, or
	// anything else is a serving-tier failure and fails the test.
	stop := make(chan struct{})
	var delivered, refused, failures atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wc := client.New(front.URL)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				src := g.Name(compactroute.NodeID((w*13 + i) % nodes))
				dst := g.Name(compactroute.NodeID((w*29 + i*7 + 1) % nodes))
				res, err := wc.RouteByName(ctx, src, dst)
				switch {
				case err == nil && res.Delivered:
					delivered.Add(1)
				case client.IsStatus(err, http.StatusBadGateway):
					refused.Add(1)
				default:
					t.Logf("query %d→%d: %+v, %v", src, dst, res, err)
					failures.Add(1)
					return
				}
			}
		}(w)
	}

	// Phase 1: half the failure trace through the fan-out, one
	// coordinated cut-over, all three shards up.
	half := len(trace) / 2
	applied := uint64(0)
	for b := 0; b < half; b += 5 {
		if _, err := fc.Mutate(ctx, trace[b:min(b+5, half)]...); err != nil {
			t.Fatalf("phase-1 mutate at %d: %v", b, err)
		}
	}
	applied += uint64(half)
	if v, err := fc.RebuildWait(ctx); err != nil || v.MutTo != applied {
		t.Fatalf("phase-1 cut-over: %+v, %v (want mutTo %d)", v, err, applied)
	}

	// Kill shard 2 mid-churn. The rest of the trace keeps flowing: the
	// first fan-out that hits the corpse ejects it and continues on
	// the survivors.
	wraps[2].down.Store(true)
	for b := half; b < len(trace); b += 5 {
		if _, err := fc.Mutate(ctx, trace[b:min(b+5, len(trace))]...); err != nil {
			t.Fatalf("mutate with a dead shard at %d: %v", b, err)
		}
	}
	applied = uint64(len(trace))
	deadline := time.Now().Add(10 * time.Second)
	for c.shards[2].healthy.Load() {
		if time.Now().After(deadline) {
			t.Fatalf("dead shard never ejected: %+v", c.Stats())
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Quiesce the overlay on the survivors and cut over again.
	if len(recovery) > 0 {
		if _, err := fc.Mutate(ctx, recovery...); err != nil {
			t.Fatalf("recovery tail: %v", err)
		}
		applied += uint64(len(recovery))
	}
	if v, err := fc.RebuildWait(ctx); err != nil || v.MutTo != applied {
		t.Fatalf("post-recovery cut-over: %+v, %v (want mutTo %d)", v, err, applied)
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d survivor-era queries failed (%d delivered, %d refused)",
			failures.Load(), delivered.Load(), refused.Load())
	}
	if delivered.Load() == 0 {
		t.Fatal("no queries delivered during the kill-churn")
	}
	if st := c.Stats(); st.Ejections == 0 {
		t.Fatalf("cluster stats after kill: %+v", st)
	}

	// Deterministic overlay refusal through the cluster: fail a node,
	// the front-door answers 502 for routes to it, recovery restores
	// delivery. (Replayed onto the dead shard later so logs line up.)
	downName := g.Name(compactroute.NodeID(nodes / 2))
	extra := []compactroute.Mutation{
		compactroute.MutFailNode(downName),
		compactroute.MutRecoverNode(downName),
	}
	if _, err := fc.Mutate(ctx, extra[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := fc.RouteByName(ctx, g.Name(0), downName); !client.IsStatus(err, http.StatusBadGateway) {
		t.Fatalf("route to a down node through the front-door: %v, want 502", err)
	}
	if _, err := fc.Mutate(ctx, extra[1]); err != nil {
		t.Fatal(err)
	}
	if res, err := fc.RouteByName(ctx, g.Name(0), downName); err != nil || !res.Delivered {
		t.Fatalf("route after recovery: %+v, %v", res, err)
	}
	applied += uint64(len(extra))

	// Revive the corpse with its short log: it answers health probes
	// but missed mutations and a cut-over, so re-admission must refuse
	// (version and log-position both disagree). White-box nudge: clear
	// the probe backoff the outage accumulated so the health loop
	// compares promptly instead of sleeping out a capped window.
	wraps[2].down.Store(false)
	c.shards[2].fails.Store(0)
	c.shards[2].nextProbe.Store(0)
	time.Sleep(6 * healthEvery)
	if c.shards[2].healthy.Load() {
		t.Fatalf("divergent shard re-admitted: %+v", c.Stats())
	}

	// Catch it up out-of-band — the same mutations its peers logged,
	// one rebuild to the same version ID — and the health loop must
	// take it back.
	missed := append(append([]compactroute.Mutation{}, trace[half:]...), recovery...)
	if _, err := servers[2].Mutate(missed...); err != nil {
		t.Fatalf("out-of-band catch-up: %v", err)
	}
	if _, err := servers[2].Rebuild(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := servers[2].Mutate(extra...); err != nil {
		t.Fatal(err)
	}
	if v, _ := servers[2].Version(); v.ID != 2 {
		t.Fatalf("caught-up shard at version %d, want 2", v.ID)
	}
	c.shards[2].fails.Store(0)
	c.shards[2].nextProbe.Store(0)
	deadline = time.Now().Add(15 * time.Second)
	for !c.shards[2].healthy.Load() {
		if time.Now().After(deadline) {
			t.Fatalf("caught-up shard never re-admitted: %+v", c.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if c.Stats().Readmissions == 0 {
		t.Fatal("readmission not counted")
	}

	// Full strength again: every shard fault-free at the same version,
	// and a cross-shard route flows through the re-admitted world.
	for i, s := range servers {
		v, _ := s.Version()
		if v.ID != 2 || v.MutTo != uint64(len(trace)+len(recovery)) {
			t.Fatalf("shard %d at version %d (mutTo %d) after re-admission", i, v.ID, v.MutTo)
		}
		if f := s.Stats().Faults; f == nil || f.DownNodes != 0 || f.DownEdges != 0 {
			t.Fatalf("shard %d fault view not empty: %+v", i, f)
		}
	}
	if res, err := fc.RouteByName(ctx, g.Name(1), g.Name(2)); err != nil || !res.Delivered {
		t.Fatalf("route after full recovery: %+v, %v", res, err)
	}
}
