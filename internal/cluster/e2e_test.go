package cluster

import (
	"context"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"compactroute"
	"compactroute/client"
)

// TestEndToEndClusterChurn is the acceptance run for the serving
// tier: two shards behind a front-door, a concurrent route replay
// that tolerates ZERO failures, 120 mutations fanned out in batches,
// a coordinated hot-swap every three batches. Afterwards both shards
// serve the same version, no skew was ever observed, and a strided
// sample of front-door answers — stretch included — is bit-identical
// to a cold single-process build of the final topology.
func TestEndToEndClusterChurn(t *testing.T) {
	const nodes = 110
	c, servers, _ := bootCluster(t, 2, nodes, time.Hour)
	front := httptest.NewServer(c.Handler())
	defer front.Close()
	fc := client.New(front.URL)
	ctx := context.Background()

	net := servers[0].Scheme().Network()
	g := net.Graph()
	muts, err := compactroute.GenerateMutations(net, 120, 21)
	if err != nil {
		t.Fatal(err)
	}

	// Concurrent replay over base names (present in every version),
	// entirely through the front-door: every answer must arrive and be
	// delivered, across mutation fan-outs, ejectionless health checks,
	// and four cut-overs.
	stop := make(chan struct{})
	var queries, failures atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wc := client.New(front.URL)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				src := g.Name(compactroute.NodeID((w*13 + i) % nodes))
				dst := g.Name(compactroute.NodeID((w*29 + i*7 + 1) % nodes))
				res, err := wc.RouteByName(ctx, src, dst)
				if err != nil || !res.Delivered {
					t.Logf("query %d→%d: %+v, %v", src, dst, res, err)
					failures.Add(1)
					return
				}
				queries.Add(1)
			}
		}(w)
	}

	// Churn: 120 mutations in batches of 10 through the front-door, a
	// coordinated rebuild every 3 batches (4 cut-overs total).
	applied := uint64(0)
	for b := 0; b < 12; b++ {
		mr, err := fc.Mutate(ctx, muts[b*10:(b+1)*10]...)
		if err != nil {
			t.Fatalf("mutate batch %d: %v", b, err)
		}
		applied += 10
		if mr.Seq != applied {
			t.Fatalf("mutate batch %d sealed at seq %d, want %d", b, mr.Seq, applied)
		}
		if (b+1)%3 == 0 {
			v, err := fc.RebuildWait(ctx) // front-door always coordinates
			if err != nil {
				t.Fatalf("coordinated rebuild after batch %d: %v", b, err)
			}
			if v.MutTo != applied {
				t.Fatalf("cut-over sealed at mutation %d, want %d", v.MutTo, applied)
			}
		}
	}
	// Let the replay observe the final version, then stop it.
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d of %d churn-time queries failed", failures.Load(), queries.Load()+failures.Load())
	}
	if queries.Load() == 0 {
		t.Fatal("no queries completed during churn")
	}

	// Both shards landed on the same version, through four coordinated
	// swaps, with no skew ever surfacing.
	for i, s := range servers {
		v, ok := s.Version()
		if !ok {
			t.Fatalf("shard %d not dynamic", i)
		}
		if v.ID != 4 || v.MutTo != 120 {
			t.Fatalf("shard %d at version %d (mutTo %d), want 4 (120)", i, v.ID, v.MutTo)
		}
	}
	st := c.Stats()
	if st.Swaps != 4 || st.SkewObserved != 0 {
		t.Fatalf("cluster stats after churn: %+v", st)
	}
	if st.LastCutoverNs <= 0 || st.MaxCutoverNs >= int64(time.Second) {
		t.Fatalf("cut-over pause out of range: last %v max %v",
			time.Duration(st.LastCutoverNs), time.Duration(st.MaxCutoverNs))
	}

	// Front-door answers match a cold single-process build of the
	// final topology — delivery, cost, hops, header bits, shortest
	// cost, and stretch — and carry the final version.
	finalNet, err := compactroute.ReplayNetwork(net, muts)
	if err != nil {
		t.Fatal(err)
	}
	finalNet.EnsureMetric()
	cold, err := compactroute.Build(finalNet, compactroute.Config{Kind: "fulltable", K: 2, Seed: 11, SFactor: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	fg := finalNet.Graph()
	checked, scattered := 0, 0
	for s := 0; s < fg.N(); s += 5 {
		for d := 1; d < fg.N(); d += 7 {
			src, dst := fg.Name(compactroute.NodeID(s)), fg.Name(compactroute.NodeID(d))
			want, err := cold.RouteByName(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			got, err := fc.RouteByName(ctx, src, dst)
			if err != nil {
				t.Fatalf("route %d→%d: %v", src, dst, err)
			}
			if got.Delivered != want.Delivered || got.Cost != want.Cost ||
				got.Hops != want.Hops || got.HeaderBits != want.HeaderBits ||
				got.ShortestCost != want.ShortestCost {
				t.Fatalf("route %d→%d diverged from cold build: cluster %+v cold %+v", src, dst, got, want)
			}
			// Stretch 0 on the wire for the degenerate self-route.
			if want.ShortestCost > 0 && got.Stretch != want.Stretch() {
				t.Fatalf("route %d→%d stretch %v, cold %v", src, dst, got.Stretch, want.Stretch())
			}
			if got.Version == nil || *got.Version != 4 {
				t.Fatalf("route %d→%d version %v, want 4", src, dst, got.Version)
			}
			if c.Owner(src) != c.Owner(dst) {
				scattered++
			}
			checked++
		}
	}
	if checked == 0 || scattered == 0 {
		t.Fatalf("cold-build sample too thin: %d checked, %d cross-shard", checked, scattered)
	}
}
