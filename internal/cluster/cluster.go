// Package cluster is the front-door serving tier over N routed
// shards: one consistent-hash partition of the external name space,
// one coordinated mutation log, and one two-phase cut-over that keeps
// every shard answering from the same topology version.
//
// # Partition model
//
// Every shard holds the FULL scheme — shards started from the same
// topology source and seed build byte-identical versions — so the
// partition is of query ownership, not of graph state. Ownership is
// rendezvous (highest-random-weight) hashing: shard(name) is the
// shard maximizing mix(name XOR shardSeed), which moves only 1/N of
// the names when a shard joins or leaves and needs no coordination.
// A route whose source and destination hash to the same shard is
// proxied straight through. A cross-shard route scatter-gathers: the
// source-owning shard walks the route (GET /v1/route), the
// destination-owning shard confirms the destination and the stretch
// denominator on ITS serving version (GET /v1/resolve, O(1) against
// the metric), and the front-door merges the two — so the stretch
// accounting in every answer is confirmed by both owners. If the two
// legs answer from different topology versions, the merge is refused
// with version skew (409) rather than composing numbers from two
// different graphs.
//
// # Coordinated cut-over
//
// Mutations fan out to every healthy shard under one lock, one batch
// at a time, so the shards' mutation logs stay identical. A cluster
// rebuild is two-phase: every shard stages the next version (the
// expensive build, off the serving path), the coordinator verifies
// the staged versions agree (same ID, same sealed log position), and
// only then commits them all while holding the route gate — in-flight
// routes finish first, new routes wait out the commit fan-out (the
// measured cut-over pause), and no route ever observes two versions.
// A shard that fails its commit is ejected before it can answer from
// the wrong topology.
//
// # Failure handling
//
// A transport failure ejects the shard and the route retries on
// another healthy shard (safe: every shard owns the full scheme).
// A caller abandoning its own request (disconnect, client-side
// timeout) is NOT a shard fault: it ejects nothing, and the
// log-changing fan-outs (Mutate, the Rebuild phases) run detached
// from the caller's context so a disconnect can never strand them
// half-applied across the shards. A
// background health loop probes ejected shards with exponential
// backoff and re-admits one only when its version ID and log length
// match a currently-healthy reference shard — a shard that missed
// mutations while it was out stays out.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"compactroute"
	"compactroute/client"
	"compactroute/internal/obs"
)

// ErrNoHealthyShard reports a cluster call with every shard ejected.
// Retryable (503) — the health loop may re-admit shards.
var ErrNoHealthyShard = errors.New("cluster: no healthy shard")

// ErrDivergence reports two shards contradicting each other on the
// same topology version — a data fault, not a transport fault.
// Retrying the same pair cannot help, so the front-door surfaces it
// (500) instead of failing over.
var ErrDivergence = errors.New("cluster: shards diverged")

// Internal deadlines for the detached coordination fan-outs (see
// Mutate and Rebuild): log appends and version swaps are cheap, so a
// shard that cannot finish one inside this window is treated as down.
// Staging is NOT bounded — builds legitimately take arbitrary time.
const fanoutTimeout = 30 * time.Second

// Options configures New.
type Options struct {
	// Shards are the routed base URLs (http://host:port), one per
	// shard. At least one is required. All shards must serve the same
	// scheme built from the same topology source and seed.
	Shards []string
	// HealthEvery is the health-probe interval (0: 1s). Ejected
	// shards are probed with exponential backoff on top of this.
	HealthEvery time.Duration
	// BestOfBoth adds a reverse walk to every cross-shard scatter: the
	// destination owner routes dst→src concurrently with the source
	// owner's forward walk, and the cheaper delivered direction is
	// served (edges are undirected, so either walk answers the pair).
	// The reverse leg is advisory — it can rescue a query the forward
	// overlay blocks, but never introduces a new failure mode: an
	// errored, undelivered, or version-skewed reverse leg is simply
	// discarded. Single-shard routes are untouched (the shard applies
	// its own best-of-both if routed was started with it).
	BestOfBoth bool
	// TraceSample traces 1 in TraceSample front-door requests (0: 64;
	// negative: sampling off — propagated trace IDs are still
	// honored). A sampled request's ID rides the X-Compactroute-Trace
	// header on its shard legs, so the per-shard views merge under one
	// ID via GET /v1/trace/{id}.
	TraceSample int
	// TraceRing bounds the stored-trace ring (0: 1024).
	TraceRing int
	// SlowLog, when non-nil, receives slow and refused front-door
	// requests as JSON lines.
	SlowLog io.Writer
	// SlowThreshold is the slow-log latency threshold (0: 100ms).
	SlowThreshold time.Duration
	// Logf receives operational log lines (nil: log.Printf).
	Logf func(format string, args ...any)
}

// shard is one routed backend: a client, a health bit, and the
// rendezvous seed its ownership scores mix with.
type shard struct {
	url  string
	c    *client.Client
	seed uint64

	healthy   atomic.Bool
	fails     atomic.Uint32 // consecutive failed probes (backoff exponent)
	nextProbe atomic.Int64  // unix nanos before which no re-admission probe runs
}

// Cluster is the front-door: construct with New, arm the health loop
// with Start, serve Handler. All methods are safe for concurrent use.
type Cluster struct {
	opts   Options
	logf   func(string, ...any)
	shards []*shard

	// gate is the two-phase cut-over gate: routes hold it for read,
	// the commit fan-out holds it for write. The write hold time IS
	// the cluster's cut-over pause.
	gate sync.RWMutex
	// muteMu serializes mutate fan-outs, coordinated rebuilds, and
	// re-admission checks: one log-changing operation at a time keeps
	// every shard's mutation log identical.
	muteMu sync.Mutex

	started sync.Once
	closed  sync.Once
	done    chan struct{}
	loop    chan struct{}

	// counters (see Stats)
	routes, proxied, scattered    atomic.Uint64
	reversed                      atomic.Uint64
	failovers, ejections, readmit atomic.Uint64
	skews, swaps                  atomic.Uint64
	lastCutoverNs, maxCutoverNs   atomic.Int64

	// observability (see internal/obs)
	tracer  *obs.Tracer
	metrics *obs.Metrics
	journal *obs.Journal
	slow    *obs.SlowLog
}

// Stats is a point-in-time snapshot of the front-door counters.
type Stats struct {
	Shards        int    `json:"shards"`
	Healthy       int    `json:"healthy"`
	Routes        uint64 `json:"routes"`
	Proxied       uint64 `json:"proxied"`   // single-shard routes
	Scattered     uint64 `json:"scattered"` // cross-shard scatter-gathers
	Reversed      uint64 `json:"reversed"`  // scatters served by the reverse walk (BestOfBoth)
	Failovers     uint64 `json:"failovers"`
	Ejections     uint64 `json:"ejections"`
	Readmissions  uint64 `json:"readmissions"`
	SkewObserved  uint64 `json:"skewObserved"`
	Swaps         uint64 `json:"swaps"` // coordinated cut-overs completed
	LastCutoverNs int64  `json:"lastCutoverNs"`
	MaxCutoverNs  int64  `json:"maxCutoverNs"`
}

// New wires a front-door over the shard URLs. Shards start healthy;
// the first failed call or probe ejects. Call Start to arm the health
// loop and Close when done.
func New(opts Options) (*Cluster, error) {
	if len(opts.Shards) == 0 {
		return nil, fmt.Errorf("cluster: Options.Shards is required")
	}
	c := &Cluster{
		opts: opts,
		logf: opts.Logf,
		done: make(chan struct{}),
		loop: make(chan struct{}),
	}
	if c.logf == nil {
		c.logf = log.Printf
	}
	sample := opts.TraceSample
	switch {
	case sample == 0:
		sample = 64
	case sample < 0:
		sample = 0
	}
	c.tracer = obs.NewTracer(opts.TraceRing, sample)
	c.metrics = obs.NewMetrics()
	c.journal = obs.NewJournal(256)
	c.slow = obs.NewSlowLog(opts.SlowLog, opts.SlowThreshold)
	seen := make(map[string]bool, len(opts.Shards))
	for _, url := range opts.Shards {
		if seen[url] {
			return nil, fmt.Errorf("cluster: duplicate shard %s", url)
		}
		seen[url] = true
		s := &shard{url: url, c: client.New(url), seed: urlSeed(url)}
		s.healthy.Store(true)
		c.shards = append(c.shards, s)
	}
	return c, nil
}

// urlSeed derives a shard's stable rendezvous seed from its URL, so
// ownership does not depend on the order shards were listed in.
func urlSeed(url string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(url))
	return mix(h.Sum64())
}

// mix is the splitmix64 finalizer: cheap, full-avalanche, and enough
// to turn (name XOR seed) into an unbiased rendezvous score.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Owner returns the index of the healthy shard owning name, or -1
// with every shard ejected. Rendezvous hashing: the healthy shard
// with the highest mixed score wins, so ejecting a shard reassigns
// only that shard's names.
func (c *Cluster) Owner(name uint64) int {
	best, bestScore := -1, uint64(0)
	for i, s := range c.shards {
		if !s.healthy.Load() {
			continue
		}
		if score := mix(name ^ s.seed); best == -1 || score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// ShardURLs returns the configured shard base URLs in order.
func (c *Cluster) ShardURLs() []string {
	out := make([]string, len(c.shards))
	for i, s := range c.shards {
		out[i] = s.url
	}
	return out
}

// Start arms the background health loop (idempotent).
func (c *Cluster) Start() {
	c.started.Do(func() { go c.healthLoop() })
}

// Close stops the health loop. Safe to call more than once, with or
// without Start.
func (c *Cluster) Close() {
	c.closed.Do(func() { close(c.done) })
	c.started.Do(func() { close(c.loop) }) // never started: nothing to wait for
	<-c.loop
}

// eject marks a shard unhealthy after a transport failure.
func (c *Cluster) eject(s *shard, why error) {
	if s.healthy.CompareAndSwap(true, false) {
		c.ejections.Add(1)
		s.fails.Store(1)
		s.nextProbe.Store(time.Now().Add(c.healthEvery()).UnixNano())
		c.journal.Record("eject", fmt.Sprintf("%s: %v", s.url, why))
		c.logf("cluster: ejected %s: %v", s.url, why)
	}
}

func (c *Cluster) healthEvery() time.Duration {
	if c.opts.HealthEvery > 0 {
		return c.opts.HealthEvery
	}
	return time.Second
}

// healthLoop probes shards: healthy ones for liveness every tick,
// ejected ones for re-admission with exponential backoff.
func (c *Cluster) healthLoop() {
	defer close(c.loop)
	tick := time.NewTicker(c.healthEvery())
	defer tick.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-tick.C:
			c.probeAll()
		}
	}
}

// probeAll runs one health pass over every shard.
func (c *Cluster) probeAll() {
	ctx, cancel := context.WithTimeout(context.Background(), c.healthEvery())
	defer cancel()
	for _, s := range c.shards {
		if s.healthy.Load() {
			// Only transport-level failures eject; an API error means
			// the shard is up and talking.
			if _, err := s.c.Healthz(ctx); isTransport(err) {
				c.eject(s, err)
			}
			continue
		}
		if time.Now().UnixNano() < s.nextProbe.Load() {
			continue
		}
		c.tryReadmit(ctx, s)
	}
}

// tryReadmit probes an ejected shard and re-admits it only when its
// topology lineage matches a healthy reference shard: same version
// ID, same mutation-log length. The check runs under muteMu so no
// mutate fan-out or rebuild is mid-flight while the two shards are
// compared. A shard that missed log entries while it was out can
// never pass — there is no re-sync path, so it stays ejected (by
// design: admitting it would silently fork the cluster's topology).
func (c *Cluster) tryReadmit(ctx context.Context, s *shard) {
	backoff := func() {
		n := s.fails.Add(1)
		if n > 6 {
			n = 6 // cap: probe at least every 64 intervals
		}
		d := c.healthEvery() * time.Duration(uint64(1)<<n)
		s.nextProbe.Store(time.Now().Add(d).UnixNano())
	}
	c.muteMu.Lock()
	defer c.muteMu.Unlock()
	h, err := s.c.Healthz(ctx)
	if err != nil {
		backoff()
		return
	}
	for _, ref := range c.shards {
		if ref == s || !ref.healthy.Load() {
			continue
		}
		rh, err := ref.c.Healthz(ctx)
		if err != nil {
			continue
		}
		if h.Version != rh.Version || h.Mutations != rh.Mutations {
			c.logf("cluster: %s answered but diverged (version %d log %d, reference %s version %d log %d); keeping it out",
				s.url, h.Version, h.Mutations, ref.url, rh.Version, rh.Mutations)
			backoff()
			return
		}
		break // matches a healthy reference
	}
	// Matches the reference (or there is none: a fully-down cluster
	// re-admits whoever answers first).
	s.fails.Store(0)
	s.healthy.Store(true)
	c.readmit.Add(1)
	c.journal.Record("readmit", fmt.Sprintf("%s (version %d, log %d)", s.url, h.Version, h.Mutations))
	c.logf("cluster: re-admitted %s (version %d, log %d)", s.url, h.Version, h.Mutations)
}

// healthyCount returns how many shards are serving.
func (c *Cluster) healthyCount() int {
	n := 0
	for _, s := range c.shards {
		if s.healthy.Load() {
			n++
		}
	}
	return n
}

// RouteByName answers one routing query: proxied when one shard owns
// both names, scatter-gathered across the two owners otherwise. The
// route gate is held for read, so answers never straddle a
// coordinated cut-over. Transport failures eject the shard and the
// query retries on the survivors.
//
//crlint:hotpath
func (c *Cluster) RouteByName(ctx context.Context, src, dst uint64) (client.Route, error) {
	c.gate.RLock()
	defer c.gate.RUnlock()
	c.routes.Add(1)
	var lastErr error
	for attempt := 0; attempt <= len(c.shards); attempt++ {
		if attempt > 0 {
			c.failovers.Add(1)
			obs.Mark(ctx, "frontdoor", "failover", "")
		}
		si, di := c.Owner(src), c.Owner(dst)
		if si < 0 || di < 0 {
			return client.Route{}, fmt.Errorf("%w (last transport error: %v)", ErrNoHealthyShard, lastErr)
		}
		if si == di {
			res, err := c.shards[si].c.RouteByName(ctx, src, dst)
			if err != nil {
				if shardFault(ctx, err) {
					c.eject(c.shards[si], err)
					lastErr = err
					continue
				}
				return client.Route{}, err
			}
			c.proxied.Add(1)
			obs.Mark(ctx, "frontdoor", "proxy", c.shards[si].url)
			return res, nil
		}
		res, err := c.scatter(ctx, c.shards[si], c.shards[di], src, dst)
		if err != nil {
			// Version skew and data divergence are coordination faults,
			// not shard faults: retrying against the same pair cannot
			// help, and the caller needs the 409/500.
			if errors.Is(err, compactroute.ErrVersionSkew) || errors.Is(err, ErrDivergence) {
				return client.Route{}, err
			}
			if shardFault(ctx, err) {
				lastErr = err
				continue // scatter already ejected the failed leg
			}
			return client.Route{}, err
		}
		c.scattered.Add(1)
		return res, nil
	}
	return client.Route{}, fmt.Errorf("%w (all retries failed: %v)", ErrNoHealthyShard, lastErr)
}

// isTransport reports whether err is a transport-level failure (no
// HTTP answer) as opposed to an API error the shard chose to send.
func isTransport(err error) bool {
	var apiErr *client.Error
	return err != nil && !errors.As(err, &apiErr)
}

// shardFault reports whether err counts AGAINST the shard: a
// transport failure that was not caused by the caller abandoning ctx.
// A client disconnect or client-side timeout surfaces through the
// HTTP client as context.Canceled/DeadlineExceeded with ctx.Err()
// set — the shard is fine, the caller left — and must not eject
// anything or trigger failover. Only for paths driven by the
// CALLER's context; internal probe contexts (probeAll) time out
// precisely when the shard is unresponsive and keep using
// isTransport.
func shardFault(ctx context.Context, err error) bool {
	if !isTransport(err) {
		return false
	}
	if ctx.Err() != nil &&
		(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		return false
	}
	return true
}

// scatter runs the cross-shard form: the source owner walks the full
// route while the destination owner confirms the destination name and
// the stretch denominator, concurrently. The two legs must answer
// from the same topology version — anything else is version skew.
// Under Options.BestOfBoth a third leg walks dst→src on the
// destination owner; the cheaper delivered direction is served (ties
// and errors keep the forward walk — see Options).
func (c *Cluster) scatter(ctx context.Context, srcShard, dstShard *shard, src, dst uint64) (client.Route, error) {
	type routeLeg struct {
		res client.Route
		err error
	}
	type resolveLeg struct {
		res client.Resolve
		err error
	}
	rc := make(chan routeLeg, 1)
	vc := make(chan resolveLeg, 1)
	// Only the forward walk carries the trace to its shard: the
	// resolve and reverse legs run under a trace-stripped context so
	// their shard-side hops cannot interleave into the merged per-ID
	// view. The front-door records a span per leg either way.
	go func() {
		t0 := time.Now()
		res, err := srcShard.c.RouteByName(ctx, src, dst)
		obs.SpanSince(ctx, "frontdoor", "scatter-walk", srcShard.url, t0)
		rc <- routeLeg{res, err}
	}()
	go func() {
		t0 := time.Now()
		res, err := dstShard.c.Resolve(obs.WithTrace(ctx, nil), src, dst)
		obs.SpanSince(ctx, "frontdoor", "scatter-resolve", dstShard.url, t0)
		vc <- resolveLeg{res, err}
	}()
	var bc chan routeLeg
	if c.opts.BestOfBoth {
		bc = make(chan routeLeg, 1)
		go func() {
			t0 := time.Now()
			res, err := dstShard.c.RouteByName(obs.WithTrace(ctx, nil), dst, src)
			obs.SpanSince(ctx, "frontdoor", "scatter-reverse", dstShard.url, t0)
			bc <- routeLeg{res, err}
		}()
	}
	walk, confirm := <-rc, <-vc
	if bc != nil {
		// Fold the reverse walk in. It is strictly advisory: only a
		// delivered reverse answer on a version agreeing with the
		// forward walk can replace it, and only by being cheaper — or by
		// succeeding where the forward direction failed as an API
		// outcome (its fault overlay blocking the only path is exactly
		// the case the reverse direction exists to dodge). Transport
		// faults on the reverse leg are left for the resolve leg's
		// handling below: both run on dstShard, so a dead shard fails
		// the confirm leg and drives the normal eject-and-retry path.
		back := <-bc
		if back.err == nil && back.res.Delivered {
			// An adopted reverse answer defers its stretch denominator
			// to the confirm leg: its own ShortestCost was summed
			// dst→src and can differ from the destination owner's
			// src→dst sum in the last ulp — a float artifact, not the
			// data fault the divergence check below exists to catch.
			back.res.ShortestCost, back.res.Stretch = 0, 0
			switch {
			case walk.err != nil && !shardFault(ctx, walk.err):
				c.reversed.Add(1)
				obs.Mark(ctx, "frontdoor", "verdict", "reverse-won")
				walk = routeLeg{res: back.res}
			case walk.err == nil:
				if walk.res.Version != nil && back.res.Version != nil && *walk.res.Version != *back.res.Version {
					c.skews.Add(1) // advisory leg: discard, don't refuse
					obs.Mark(ctx, "frontdoor", "verdict", "reverse-skewed")
				} else if !walk.res.Delivered || back.res.Cost < walk.res.Cost {
					c.reversed.Add(1)
					obs.Mark(ctx, "frontdoor", "verdict", "reverse-won")
					walk = back
				}
			}
		}
	}
	if walk.err != nil {
		if shardFault(ctx, walk.err) {
			c.eject(srcShard, walk.err)
		}
		return client.Route{}, walk.err
	}
	if confirm.err != nil {
		if shardFault(ctx, confirm.err) {
			c.eject(dstShard, confirm.err)
		}
		return client.Route{}, confirm.err
	}
	res, rv := walk.res, confirm.res
	if res.Version != nil && rv.Version != nil && *res.Version != *rv.Version {
		c.skews.Add(1)
		return client.Route{}, fmt.Errorf(
			"cluster: route legs answered from versions %d (%s) and %d (%s): %w",
			*res.Version, srcShard.url, *rv.Version, dstShard.url, compactroute.ErrVersionSkew)
	}
	// Destination-side completion: the walk carries the path, the
	// destination owner supplies (or confirms) the stretch
	// denominator from its own table.
	if rv.MetricKnown && rv.SrcKnown && rv.DstKnown {
		if res.ShortestCost != 0 && res.ShortestCost != rv.ShortestCost {
			ver := "?"
			if res.Version != nil {
				ver = fmt.Sprintf("%d", *res.Version)
			}
			return client.Route{}, fmt.Errorf(
				"%w on shortest %d→%d at version %s: %v (%s) vs %v (%s)",
				ErrDivergence, src, dst, ver, res.ShortestCost, srcShard.url, rv.ShortestCost, dstShard.url)
		}
		res.ShortestCost = rv.ShortestCost
		if res.ShortestCost > 0 {
			res.Stretch = res.Cost / res.ShortestCost
		}
	}
	return res, nil
}

// Resolve proxies a name-resolution query to the owner of src.
func (c *Cluster) Resolve(ctx context.Context, src, dst uint64) (client.Resolve, error) {
	c.gate.RLock()
	defer c.gate.RUnlock()
	for attempt := 0; attempt <= len(c.shards); attempt++ {
		i := c.Owner(src)
		if i < 0 {
			return client.Resolve{}, ErrNoHealthyShard
		}
		res, err := c.shards[i].c.Resolve(ctx, src, dst)
		if err != nil && shardFault(ctx, err) {
			c.eject(c.shards[i], err)
			continue
		}
		return res, err
	}
	return client.Resolve{}, ErrNoHealthyShard
}

// Mutate fans a mutation batch out to every healthy shard, one batch
// at a time cluster-wide, keeping the shards' logs identical. The
// first shard validates for the cluster (the logs being identical,
// its verdict is every shard's verdict): a validation error aborts
// the fan-out with nothing applied anywhere. A shard that fails
// transport mid-fan-out is ejected — its log is now short, and the
// re-admission check will hold it out until an operator restarts it
// from the shared topology source.
func (c *Cluster) Mutate(ctx context.Context, muts ...compactroute.Mutation) (client.MutateReply, error) {
	// Detached from the caller: a client disconnect mid-fan-out must
	// not abandon the batch half-applied (the shards' logs would fork)
	// or eject shards that merely saw the cancellation. The internal
	// deadline keeps a hung shard from stalling the mutation pipeline.
	ctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), fanoutTimeout)
	defer cancel()
	c.muteMu.Lock()
	defer c.muteMu.Unlock()
	var first *client.MutateReply
	for _, s := range c.shards {
		if !s.healthy.Load() {
			continue
		}
		reply, err := s.c.Mutate(ctx, muts...)
		if err != nil {
			if isTransport(err) {
				c.eject(s, err)
				continue
			}
			if first == nil {
				return client.MutateReply{}, err // validation failed; nothing applied anywhere
			}
			// Later shards must agree with the first — logs are
			// identical. Disagreement means the shard forked; eject.
			c.eject(s, fmt.Errorf("mutation accepted by peers but rejected here: %w", err))
			continue
		}
		if first == nil {
			first = &reply
		}
	}
	if first == nil {
		return client.MutateReply{}, ErrNoHealthyShard
	}
	return *first, nil
}

// Rebuild drives a coordinated two-phase cut-over:
//
//  1. STAGE — every healthy shard builds the next version off its
//     serving path (POST /v1/rebuild?stage=1), concurrently. The
//     fan-out runs under muteMu, so every shard seals its log at the
//     same position.
//  2. VERIFY — the staged versions must agree: same ID, same sealed
//     log position. Anything else is version skew; nothing commits.
//  3. COMMIT — with the route gate held for write (in-flight routes
//     have finished, new routes wait), every shard swaps to the
//     agreed ID. The gate hold time is the returned cut-over pause.
//
// With nothing pending the shards stage their serving version and the
// commit is an idempotent no-op — the call is always safe. A shard
// that fails its commit is ejected before the gate reopens, so every
// shard still routing answers from the same version.
func (c *Cluster) Rebuild(ctx context.Context) (compactroute.VersionInfo, time.Duration, error) {
	// Detached from the caller: once staging starts, a client
	// disconnect must not cancel the cut-over halfway (some shards
	// committed, some not, the rest ejected for seeing the
	// cancellation). Staging is unbounded — builds take as long as
	// they take — while the commit fan-out gets its own deadline below
	// so a hung shard cannot pin the route gate.
	ctx = context.WithoutCancel(ctx)
	c.muteMu.Lock()
	defer c.muteMu.Unlock()

	var healthy []*shard
	for _, s := range c.shards {
		if s.healthy.Load() {
			healthy = append(healthy, s)
		}
	}
	if len(healthy) == 0 {
		return compactroute.VersionInfo{}, 0, ErrNoHealthyShard
	}

	// Phase 1: stage everywhere, concurrently (builds dominate).
	infos := make([]compactroute.VersionInfo, len(healthy))
	errs := make([]error, len(healthy))
	var wg sync.WaitGroup
	for i, s := range healthy {
		wg.Add(1)
		go func(i int, s *shard) {
			defer wg.Done()
			infos[i], errs[i] = s.c.Stage(ctx)
		}(i, s)
	}
	wg.Wait()
	staged := make([]*shard, 0, len(healthy))
	stagedInfos := make([]compactroute.VersionInfo, 0, len(healthy))
	for i, err := range errs {
		if err != nil {
			if isTransport(err) {
				c.eject(healthy[i], err)
				continue
			}
			return compactroute.VersionInfo{}, 0, fmt.Errorf("cluster: stage on %s: %w", healthy[i].url, err)
		}
		staged = append(staged, healthy[i])
		stagedInfos = append(stagedInfos, infos[i])
	}
	if len(staged) == 0 {
		return compactroute.VersionInfo{}, 0, ErrNoHealthyShard
	}

	// Phase 2: verify agreement before anything irreversible.
	want := stagedInfos[0]
	for i, info := range stagedInfos {
		if info.ID != want.ID || info.MutTo != want.MutTo {
			c.skews.Add(1)
			return compactroute.VersionInfo{}, 0, fmt.Errorf(
				"cluster: staged versions disagree: %s at %d (log %d), %s at %d (log %d): %w",
				staged[0].url, want.ID, want.MutTo, staged[i].url, info.ID, info.MutTo,
				compactroute.ErrVersionSkew)
		}
	}

	// Phase 3: commit under the gate. The pause is what routes see.
	t0 := time.Now()
	c.gate.Lock()
	cctx, cancel := context.WithTimeout(ctx, fanoutTimeout)
	var commitWG sync.WaitGroup
	commitErrs := make([]error, len(staged))
	for i, s := range staged {
		commitWG.Add(1)
		go func(i int, s *shard) {
			defer commitWG.Done()
			_, commitErrs[i] = s.c.SwapTo(cctx, want.ID)
		}(i, s)
	}
	commitWG.Wait()
	cancel()
	committed := 0
	var lastCommitErr error
	for i, err := range commitErrs {
		if err != nil {
			// Transport loss or a 409 alike: the shard may be serving
			// the old version — it cannot stay in rotation.
			c.eject(staged[i], fmt.Errorf("commit of version %d failed: %w", want.ID, err))
			if client.IsStatus(err, 409) {
				c.skews.Add(1)
			}
			lastCommitErr = err
			continue
		}
		committed++
	}
	c.gate.Unlock()
	pause := time.Since(t0)

	if committed == 0 {
		// Every shard was ejected mid-commit: nothing is serving
		// want.ID, so claiming success would hand the caller a version
		// no route will ever answer from.
		return compactroute.VersionInfo{}, 0, fmt.Errorf(
			"%w (commit of version %d failed on all %d staged shards, last: %v)",
			ErrNoHealthyShard, want.ID, len(staged), lastCommitErr)
	}
	c.swaps.Add(1)
	c.lastCutoverNs.Store(int64(pause))
	for {
		old := c.maxCutoverNs.Load()
		if int64(pause) <= old || c.maxCutoverNs.CompareAndSwap(old, int64(pause)) {
			break
		}
	}
	c.journal.Record("cutover", fmt.Sprintf("version %d on %d/%d shards (log %d..%d, pause %v)",
		want.ID, committed, len(staged), want.MutFrom, want.MutTo, pause.Round(time.Microsecond)))
	c.logf("cluster: cut over %d/%d shards to version %d (log %d..%d, pause %v)",
		committed, len(staged), want.ID, want.MutFrom, want.MutTo, pause.Round(time.Microsecond))
	return want, pause, nil
}

// Stats returns a point-in-time snapshot of the front-door counters.
func (c *Cluster) Stats() Stats {
	return Stats{
		Shards:        len(c.shards),
		Healthy:       c.healthyCount(),
		Routes:        c.routes.Load(),
		Proxied:       c.proxied.Load(),
		Scattered:     c.scattered.Load(),
		Reversed:      c.reversed.Load(),
		Failovers:     c.failovers.Load(),
		Ejections:     c.ejections.Load(),
		Readmissions:  c.readmit.Load(),
		SkewObserved:  c.skews.Load(),
		Swaps:         c.swaps.Load(),
		LastCutoverNs: c.lastCutoverNs.Load(),
		MaxCutoverNs:  c.maxCutoverNs.Load(),
	}
}

// ShardHealth is one shard's row in the cluster health report.
type ShardHealth struct {
	URL       string `json:"url"`
	Healthy   bool   `json:"healthy"`
	Version   uint64 `json:"version"`
	Pending   uint64 `json:"pending"`
	Mutations uint64 `json:"mutations"`
	Error     string `json:"error,omitempty"`
}

// Health probes every shard and reports the cluster view. Status is
// "ok" with every shard healthy, "degraded" with at least one out,
// and "down" with none serving.
func (c *Cluster) Health(ctx context.Context) (string, []ShardHealth) {
	rows := make([]ShardHealth, len(c.shards))
	var wg sync.WaitGroup
	for i, s := range c.shards {
		wg.Add(1)
		go func(i int, s *shard) {
			defer wg.Done()
			rows[i] = ShardHealth{URL: s.url, Healthy: s.healthy.Load()}
			h, err := s.c.Healthz(ctx)
			if err != nil {
				rows[i].Error = err.Error()
				return
			}
			rows[i].Version, rows[i].Pending, rows[i].Mutations = h.Version, h.Pending, h.Mutations
		}(i, s)
	}
	wg.Wait()
	switch h := c.healthyCount(); {
	case h == 0:
		return "down", rows
	case h < len(c.shards):
		return "degraded", rows
	default:
		return "ok", rows
	}
}
