package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"compactroute"
	"compactroute/internal/obs"
)

// TestEndToEndTracePropagation forces a trace through the full stack
// — front-door scatter, shard worker pool, scheme walk — and then
// retrieves the merged view by the one propagated ID. Every layer
// must have recorded spans under that ID, and the shard view must
// carry the hop-by-hop path.
func TestEndToEndTracePropagation(t *testing.T) {
	const nodes = 80
	c, servers, _ := bootCluster(t, 2, nodes, time.Hour)
	front := httptest.NewServer(c.Handler())
	defer front.Close()

	net := servers[0].Scheme().Network()
	g := net.Graph()
	const traceID = "e2e-trace-01"

	// Find a src/dst pair owned by DIFFERENT shards so the scatter
	// path (walk + resolve legs to both shards) is the one traced.
	var src, dst uint64
	found := false
	for i := 0; i < nodes && !found; i++ {
		for j := 1; j < nodes; j++ {
			u, v := g.Name(compactroute.NodeID(i)), g.Name(compactroute.NodeID(j))
			if c.Owner(u) != c.Owner(v) {
				src, dst, found = u, v, true
				break
			}
		}
	}
	if !found {
		t.Fatal("no cross-shard pair among the base names")
	}

	req, err := http.NewRequestWithContext(context.Background(), "GET",
		fmt.Sprintf("%s/v1/route?src=%d&dst=%d", front.URL, src, dst), nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.Header, traceID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced route: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(obs.Header); got != traceID {
		t.Fatalf("front-door echoed trace ID %q, want %q", got, traceID)
	}

	// Retrieve the merged trace by the propagated ID.
	resp, err = http.Get(front.URL + "/v1/trace/" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/trace/%s: status %d: %s", traceID, resp.StatusCode, body)
	}
	var merged struct {
		ID     string        `json:"id"`
		Front  obs.TraceView `json:"front"`
		Shards []struct {
			URL   string         `json:"url"`
			Trace *obs.TraceView `json:"trace"`
			Error string         `json:"error"`
		} `json:"shards"`
	}
	if err := json.Unmarshal(body, &merged); err != nil {
		t.Fatalf("merged trace does not decode: %v\n%s", err, body)
	}
	if merged.ID != traceID || merged.Front.ID != traceID {
		t.Fatalf("merged trace IDs: %q / front %q, want %q", merged.ID, merged.Front.ID, traceID)
	}

	layers := func(v obs.TraceView) map[string]int {
		m := map[string]int{}
		for _, s := range v.Spans {
			m[s.Layer]++
		}
		return m
	}

	// Front-door view: the scatter legs ran under the "frontdoor"
	// layer and the request closed with a status.
	if merged.Front.Status != http.StatusOK || merged.Front.Endpoint == "" {
		t.Fatalf("front trace not finished: %+v", merged.Front)
	}
	frontSpans := map[string]bool{}
	for _, s := range merged.Front.Spans {
		if s.Layer == "frontdoor" {
			frontSpans[s.Name] = true
		}
	}
	if !frontSpans["scatter-walk"] || !frontSpans["scatter-resolve"] {
		t.Fatalf("front trace missing scatter legs: %+v", merged.Front.Spans)
	}

	// Shard views: the merge queried both shards, but only the forward
	// walk leg carries the trace by design — the resolve leg is
	// trace-stripped so its hops cannot interleave into the per-ID
	// view. Exactly one shard (the src owner) stores the trace, with
	// pool and scheme spans and the hop-by-hop path.
	if len(merged.Shards) != 2 {
		t.Fatalf("merged trace covers %d shards, want 2", len(merged.Shards))
	}
	withTrace := 0
	for _, sh := range merged.Shards {
		if sh.Error != "" {
			t.Fatalf("shard %s trace fetch: %s", sh.URL, sh.Error)
		}
		if sh.Trace == nil {
			continue
		}
		withTrace++
		if sh.Trace.ID != traceID {
			t.Fatalf("shard %s stored trace %q, want %q", sh.URL, sh.Trace.ID, traceID)
		}
		l := layers(*sh.Trace)
		if l["pool"] == 0 || l["scheme"] == 0 {
			t.Fatalf("shard %s trace missing pool/scheme spans: %+v", sh.URL, sh.Trace.Spans)
		}
		if len(sh.Trace.Path) == 0 {
			t.Fatalf("shard %s trace recorded no hop path", sh.URL)
		}
	}
	if withTrace != 1 {
		t.Fatalf("%d shards stored the trace, want exactly 1 (the walk leg's owner)", withTrace)
	}
}
