package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"compactroute"
	"compactroute/client"
	"compactroute/internal/graph"
	"compactroute/internal/server"
)

func discardLogf(string, ...any) {}

// shardConfig is the one config every test shard shares — identical
// topology source and seed, so shards build byte-identical versions.
func shardConfig(n int) server.Config {
	return server.Config{
		Scheme: "fulltable", N: n, K: 2, Seed: 11, SFactor: 0.5,
		Metric: true, Workers: 4, CacheSize: 256, Logf: discardLogf,
	}
}

// flaky wraps a shard handler with a kill switch: while down, every
// connection is hijacked and closed mid-request, which the client
// sees as a transport failure (not an API error).
type flaky struct {
	h    http.Handler
	down atomic.Bool
}

func (f *flaky) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.down.Load() {
		if hj, ok := w.(http.Hijacker); ok {
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close()
			}
		}
		return
	}
	f.h.ServeHTTP(w, r)
}

// bootCluster starts nShards identical shards (each behind a flaky
// wrapper) and a front-door over them.
func bootCluster(t *testing.T, nShards, n int, healthEvery time.Duration) (*Cluster, []*server.Server, []*flaky) {
	t.Helper()
	urls := make([]string, nShards)
	servers := make([]*server.Server, nShards)
	wraps := make([]*flaky, nShards)
	for i := range urls {
		srv, err := server.New(shardConfig(n))
		if err != nil {
			t.Fatal(err)
		}
		srv.Start(t.Context())
		t.Cleanup(srv.Close)
		wraps[i] = &flaky{h: srv.Handler()}
		ts := httptest.NewServer(wraps[i])
		t.Cleanup(ts.Close)
		urls[i], servers[i] = ts.URL, srv
	}
	c, err := New(Options{Shards: urls, HealthEvery: healthEvery, Logf: discardLogf})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	t.Cleanup(c.Close)
	return c, servers, wraps
}

// TestOwnerRendezvousProperties: ownership is deterministic, roughly
// balanced, and ejecting a shard moves ONLY that shard's names.
func TestOwnerRendezvousProperties(t *testing.T) {
	c, err := New(Options{
		Shards: []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"},
		Logf:   discardLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const names = 20000
	counts := make([]int, 4)
	owners := make([]int, names)
	for name := uint64(0); name < names; name++ {
		o := c.Owner(name * 2654435761)
		if o2 := c.Owner(name * 2654435761); o2 != o {
			t.Fatalf("Owner not deterministic: %d then %d", o, o2)
		}
		owners[name] = o
		counts[o]++
	}
	for i, n := range counts {
		if n < names/4/2 || n > names/4*2 {
			t.Fatalf("shard %d owns %d of %d names — rendezvous badly unbalanced: %v", i, n, names, counts)
		}
	}

	// Eject shard 2: its names redistribute, everyone else's stay put.
	c.shards[2].healthy.Store(false)
	moved := 0
	for name := uint64(0); name < names; name++ {
		o := c.Owner(name * 2654435761)
		if owners[name] == 2 {
			if o == 2 {
				t.Fatalf("name %d still owned by ejected shard", name)
			}
			moved++
			continue
		}
		if o != owners[name] {
			t.Fatalf("name %d moved from healthy shard %d to %d on unrelated ejection", name, owners[name], o)
		}
	}
	if moved == 0 {
		t.Fatal("ejection moved no names")
	}
}

// TestProxyAndScatterMatchSingleProcess: every front-door answer —
// proxied or scatter-gathered — is byte-equal to the single-process
// answer, stretch included.
func TestProxyAndScatterMatchSingleProcess(t *testing.T) {
	c, servers, _ := bootCluster(t, 2, 90, time.Hour)
	front := httptest.NewServer(c.Handler())
	defer front.Close()
	fc := client.New(front.URL)

	solo := servers[0] // shards are identical; shard 0 IS the single-process answer
	g := solo.Scheme().Network().Graph()
	ctx := context.Background()
	for u := 0; u < g.N(); u += 7 {
		for v := 1; v < g.N(); v += 11 {
			src, dst := g.Name(compactroute.NodeID(u)), g.Name(compactroute.NodeID(v))
			got, err := fc.RouteByName(ctx, src, dst)
			if err != nil {
				t.Fatalf("front route %d→%d: %v", src, dst, err)
			}
			want, err := solo.Scheme().RouteByName(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			if got.Delivered != want.Delivered || got.Cost != want.Cost ||
				got.Hops != want.Hops || got.HeaderBits != want.HeaderBits ||
				got.ShortestCost != want.ShortestCost {
				t.Fatalf("route %d→%d diverged: front %+v solo %+v", src, dst, got, want)
			}
			// The wire carries stretch 0 for the degenerate self-route
			// (no shortest cost to divide by); Result.Stretch() says 1.
			if want.ShortestCost > 0 && got.Stretch != want.Stretch() {
				t.Fatalf("route %d→%d stretch %v, solo %v", src, dst, got.Stretch, want.Stretch())
			}
		}
	}
	st := c.Stats()
	if st.Proxied == 0 || st.Scattered == 0 {
		t.Fatalf("expected both proxied and scattered routes, got %+v", st)
	}
	if st.Routes != st.Proxied+st.Scattered {
		t.Fatalf("route accounting off: %+v", st)
	}

	// 422 passes through the front-door untouched.
	if _, err := fc.RouteByName(ctx, 0xFFFFFFFF, g.Name(0)); !client.IsStatus(err, 422) {
		t.Fatalf("unknown src through front-door: %v, want 422", err)
	}
}

// TestClusterSkewDetectionAndConvergence: a shard rebuilt out-of-band
// (behind the front-door's back) makes cross-shard merges refuse with
// 409 — and one coordinated rebuild converges the cluster again.
func TestClusterSkewDetectionAndConvergence(t *testing.T) {
	c, servers, _ := bootCluster(t, 2, 60, time.Hour)
	front := httptest.NewServer(c.Handler())
	defer front.Close()
	fc := client.New(front.URL)
	ctx := context.Background()
	g := servers[0].Scheme().Network().Graph()

	// One mutation through the front-door: both logs get it.
	mut := compactroute.MutSetWeight(g.Name(0), firstNeighborName(servers[0]), 2)
	if _, err := fc.Mutate(ctx, mut); err != nil {
		t.Fatal(err)
	}
	// Shard 0 rebuilds OUT-OF-BAND: the cluster now straddles
	// versions 1 and 0.
	if _, err := servers[0].Rebuild(ctx); err != nil {
		t.Fatal(err)
	}

	// Find a cross-shard pair and route it: version skew, 409.
	var sawSkew bool
	for u := 0; u < g.N() && !sawSkew; u++ {
		for v := 0; v < g.N(); v++ {
			src, dst := g.Name(compactroute.NodeID(u)), g.Name(compactroute.NodeID(v))
			if c.Owner(src) == c.Owner(dst) {
				continue
			}
			_, err := fc.RouteByName(ctx, src, dst)
			if !client.IsStatus(err, http.StatusConflict) {
				t.Fatalf("cross-shard route across skewed versions: %v, want 409", err)
			}
			sawSkew = true
			break
		}
	}
	if !sawSkew {
		t.Fatal("no cross-shard pair found")
	}
	if c.Stats().SkewObserved == 0 {
		t.Fatal("skew not counted")
	}

	// One coordinated rebuild converges: shard 0 stages its serving
	// version (nothing pending), shard 1 stages the same ID from its
	// log, and both commit.
	v, _, err := c.Rebuild(ctx)
	if err != nil {
		t.Fatalf("converging rebuild: %v", err)
	}
	if v.ID != 1 {
		t.Fatalf("converged at version %d, want 1", v.ID)
	}
	for i, s := range servers {
		if sv, _ := s.Version(); sv.ID != 1 {
			t.Fatalf("shard %d at version %d after convergence", i, sv.ID)
		}
	}
	// Cross-shard routes flow again.
	if _, err := fc.RouteByName(ctx, g.Name(0), g.Name(1)); err != nil {
		t.Fatalf("route after convergence: %v", err)
	}
}

// TestEjectionFailoverAndReadmission: a shard dying mid-traffic is
// ejected and its queries fail over; it is re-admitted once it both
// answers again and matches a healthy peer's log — and held out
// forever when it missed mutations.
func TestEjectionFailoverAndReadmission(t *testing.T) {
	const healthEvery = 20 * time.Millisecond
	c, servers, wraps := bootCluster(t, 2, 60, healthEvery)
	front := httptest.NewServer(c.Handler())
	defer front.Close()
	fc := client.New(front.URL)
	ctx := context.Background()
	g := servers[0].Scheme().Network().Graph()

	// Kill shard 1 and push enough routes that some hash to it: every
	// one must still succeed (failover), and the shard must end up
	// ejected.
	wraps[1].down.Store(true)
	for u := 0; u < 40; u++ {
		src, dst := g.Name(compactroute.NodeID(u)), g.Name(compactroute.NodeID((u+7)%g.N()))
		if _, err := fc.RouteByName(ctx, src, dst); err != nil {
			t.Fatalf("route %d→%d during shard death: %v", src, dst, err)
		}
	}
	st := c.Stats()
	if st.Healthy != 1 || st.Ejections == 0 || st.Failovers == 0 {
		t.Fatalf("after shard death: %+v", st)
	}

	// Revive it unchanged: the health loop re-admits (logs match).
	wraps[1].down.Store(false)
	deadline := time.Now().Add(10 * time.Second)
	for c.healthyCount() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("revived shard never re-admitted: %+v", c.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if c.Stats().Readmissions == 0 {
		t.Fatal("readmission not counted")
	}

	// Kill it again, mutate through the front-door (only shard 0 logs
	// it), revive: the divergent shard must STAY out.
	wraps[1].down.Store(true)
	if _, err := fc.RouteByName(ctx, g.Name(1), g.Name(2)); err != nil {
		t.Fatalf("route during second death: %v", err)
	}
	// Drive routes until the ejection lands (the first may have hit
	// only shard 0's names).
	deadline = time.Now().Add(10 * time.Second)
	for c.healthyCount() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("second ejection never happened: %+v", c.Stats())
		}
		if _, err := fc.RouteByName(ctx, g.Name(1), g.Name(2)); err != nil {
			t.Fatalf("route during second death: %v", err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	mut := compactroute.MutSetWeight(g.Name(0), firstNeighborName(servers[0]), 3)
	if _, err := fc.Mutate(ctx, mut); err != nil {
		t.Fatal(err)
	}
	wraps[1].down.Store(false)
	// Give the health loop several probe windows: the shard answers,
	// but its log is short, so it must not come back.
	time.Sleep(12 * healthEvery)
	if got := c.healthyCount(); got != 1 {
		t.Fatalf("divergent shard re-admitted (healthy=%d)", got)
	}
}

// TestCallerCancellationIsNotShardFault: a caller abandoning its own
// request (disconnect, client-side timeout) must not eject shards,
// and the log-changing fan-outs must run to completion anyway —
// otherwise one disconnect mid /v1/route empties the cluster, and one
// mid /v1/mutate forks the shards' logs.
func TestCallerCancellationIsNotShardFault(t *testing.T) {
	c, servers, _ := bootCluster(t, 2, 60, time.Hour)
	g := servers[0].Scheme().Network().Graph()
	gone, cancel := context.WithCancel(context.Background())
	cancel() // the caller has already left

	// Routes with the caller gone: error back, nothing ejected, no
	// failover storm.
	for u := 0; u < 10; u++ {
		src, dst := g.Name(compactroute.NodeID(u)), g.Name(compactroute.NodeID((u+7)%g.N()))
		if _, err := c.RouteByName(gone, src, dst); err == nil {
			t.Fatalf("route %d→%d with canceled caller: no error", src, dst)
		}
	}
	if st := c.Stats(); st.Healthy != 2 || st.Ejections != 0 || st.Failovers != 0 {
		t.Fatalf("caller cancellation ejected shards: %+v", st)
	}

	// A mutate fan-out with the caller gone still applies everywhere:
	// the fan-out is detached, so the logs cannot fork.
	mut := compactroute.MutSetWeight(g.Name(0), firstNeighborName(servers[0]), 2)
	if _, err := c.Mutate(gone, mut); err != nil {
		t.Fatalf("detached mutate fan-out: %v", err)
	}
	ctx := context.Background()
	for i, url := range c.ShardURLs() {
		hz, err := client.New(url).Healthz(ctx)
		if err != nil || hz.Mutations != 1 {
			t.Fatalf("shard %d log after detached mutate: %d mutations, err %v", i, hz.Mutations, err)
		}
	}

	// A coordinated rebuild with the caller gone still cuts over both
	// shards to the same version.
	v, _, err := c.Rebuild(gone)
	if err != nil {
		t.Fatalf("detached rebuild: %v", err)
	}
	for i, s := range servers {
		if sv, _ := s.Version(); sv.ID != v.ID {
			t.Fatalf("shard %d at version %d after detached rebuild, want %d", i, sv.ID, v.ID)
		}
	}
	if st := c.Stats(); st.Healthy != 2 || st.Ejections != 0 {
		t.Fatalf("detached coordination ejected shards: %+v", st)
	}
}

// TestRebuildAllCommitsFailIsAnError: when every staged shard fails
// its commit (all ejected), Rebuild must report failure — not count a
// swap and hand back a version no shard is serving.
func TestRebuildAllCommitsFailIsAnError(t *testing.T) {
	urls := make([]string, 2)
	servers := make([]*server.Server, 2)
	for i := range urls {
		srv, err := server.New(shardConfig(60))
		if err != nil {
			t.Fatal(err)
		}
		srv.Start(t.Context())
		t.Cleanup(srv.Close)
		ts := httptest.NewServer(&swapKiller{h: srv.Handler()})
		t.Cleanup(ts.Close)
		urls[i], servers[i] = ts.URL, srv
	}
	c, err := New(Options{Shards: urls, HealthEvery: time.Hour, Logf: discardLogf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	_, _, err = c.Rebuild(context.Background())
	if !errors.Is(err, ErrNoHealthyShard) {
		t.Fatalf("rebuild with every commit failing: %v, want ErrNoHealthyShard", err)
	}
	st := c.Stats()
	if st.Swaps != 0 {
		t.Fatalf("failed cut-over counted as a swap: %+v", st)
	}
	if st.Healthy != 0 {
		t.Fatalf("shards that failed their commit still in rotation: %+v", st)
	}
}

// swapKiller passes every request through except POST /v1/swap, whose
// connection it kills mid-request: staging succeeds, committing fails.
type swapKiller struct {
	h http.Handler
}

func (k *swapKiller) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasSuffix(r.URL.Path, "/swap") {
		if hj, ok := w.(http.Hijacker); ok {
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close()
			}
		}
		return
	}
	k.h.ServeHTTP(w, r)
}

// TestScatterDivergenceSurfacesAs500: two shards contradicting each
// other on the shortest cost at the SAME version is a data fault —
// surfaced immediately as ErrDivergence (500 on the wire), with no
// failover retries against the same pair and nothing ejected.
func TestScatterDivergenceSurfacesAs500(t *testing.T) {
	// Two fake shards that agree on the version but not the metric.
	fake := func(shortest float64) http.Handler {
		mux := http.NewServeMux()
		mux.HandleFunc("GET /v1/route", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintf(w, `{"delivered":true,"cost":10,"hops":3,"shortestCost":5,"version":1}`)
		})
		mux.HandleFunc("GET /v1/resolve", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintf(w, `{"srcKnown":true,"dstKnown":true,"metricKnown":true,"shortestCost":%v,"version":1}`, shortest)
		})
		return mux
	}
	a := httptest.NewServer(fake(5)) // agrees with the walk
	defer a.Close()
	b := httptest.NewServer(fake(7)) // contradicts it
	defer b.Close()
	c, err := New(Options{Shards: []string{a.URL, b.URL}, HealthEvery: time.Hour, Logf: discardLogf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	front := httptest.NewServer(c.Handler())
	defer front.Close()
	fc := client.New(front.URL)

	// Find a pair owned src→a, dst→b: the walk (from a) reports
	// shortest 5, the confirm (from b) reports 7.
	ctx := context.Background()
	var src, dst uint64
	found := false
	for s := uint64(0); s < 64 && !found; s++ {
		for d := uint64(0); d < 64; d++ {
			if c.Owner(s) == 0 && c.Owner(d) == 1 {
				src, dst, found = s, d, true
				break
			}
		}
	}
	if !found {
		t.Fatal("no src→a dst→b pair in 64×64 names")
	}
	if _, err := c.RouteByName(ctx, src, dst); !errors.Is(err, ErrDivergence) {
		t.Fatalf("diverged scatter: %v, want ErrDivergence", err)
	}
	if _, err := fc.RouteByName(ctx, src, dst); !client.IsStatus(err, http.StatusInternalServerError) {
		t.Fatalf("diverged scatter on the wire: %v, want 500", err)
	}
	if st := c.Stats(); st.Healthy != 2 || st.Failovers != 0 || st.Ejections != 0 {
		t.Fatalf("divergence triggered failover/ejection: %+v", st)
	}
}

// firstNeighborName returns the name of some neighbor of node 0, so
// tests can issue a valid setweight mutation.
func firstNeighborName(s *server.Server) uint64 {
	g := s.Scheme().Network().Graph()
	var name uint64
	g.Neighbors(0, func(e graph.Edge) bool {
		name = g.Name(e.To)
		return false
	})
	return name
}
