package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"compactroute"
	"compactroute/client"
	"compactroute/internal/graph"
	"compactroute/internal/server"
)

func discardLogf(string, ...any) {}

// shardConfig is the one config every test shard shares — identical
// topology source and seed, so shards build byte-identical versions.
func shardConfig(n int) server.Config {
	return server.Config{
		Scheme: "fulltable", N: n, K: 2, Seed: 11, SFactor: 0.5,
		Metric: true, Workers: 4, CacheSize: 256, Logf: discardLogf,
	}
}

// flaky wraps a shard handler with a kill switch: while down, every
// connection is hijacked and closed mid-request, which the client
// sees as a transport failure (not an API error).
type flaky struct {
	h    http.Handler
	down atomic.Bool
}

func (f *flaky) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.down.Load() {
		if hj, ok := w.(http.Hijacker); ok {
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close()
			}
		}
		return
	}
	f.h.ServeHTTP(w, r)
}

// bootCluster starts nShards identical shards (each behind a flaky
// wrapper) and a front-door over them.
func bootCluster(t *testing.T, nShards, n int, healthEvery time.Duration) (*Cluster, []*server.Server, []*flaky) {
	t.Helper()
	urls := make([]string, nShards)
	servers := make([]*server.Server, nShards)
	wraps := make([]*flaky, nShards)
	for i := range urls {
		srv, err := server.New(shardConfig(n))
		if err != nil {
			t.Fatal(err)
		}
		srv.Start()
		t.Cleanup(srv.Close)
		wraps[i] = &flaky{h: srv.Handler()}
		ts := httptest.NewServer(wraps[i])
		t.Cleanup(ts.Close)
		urls[i], servers[i] = ts.URL, srv
	}
	c, err := New(Options{Shards: urls, HealthEvery: healthEvery, Logf: discardLogf})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	t.Cleanup(c.Close)
	return c, servers, wraps
}

// TestOwnerRendezvousProperties: ownership is deterministic, roughly
// balanced, and ejecting a shard moves ONLY that shard's names.
func TestOwnerRendezvousProperties(t *testing.T) {
	c, err := New(Options{
		Shards: []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"},
		Logf:   discardLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const names = 20000
	counts := make([]int, 4)
	owners := make([]int, names)
	for name := uint64(0); name < names; name++ {
		o := c.Owner(name * 2654435761)
		if o2 := c.Owner(name * 2654435761); o2 != o {
			t.Fatalf("Owner not deterministic: %d then %d", o, o2)
		}
		owners[name] = o
		counts[o]++
	}
	for i, n := range counts {
		if n < names/4/2 || n > names/4*2 {
			t.Fatalf("shard %d owns %d of %d names — rendezvous badly unbalanced: %v", i, n, names, counts)
		}
	}

	// Eject shard 2: its names redistribute, everyone else's stay put.
	c.shards[2].healthy.Store(false)
	moved := 0
	for name := uint64(0); name < names; name++ {
		o := c.Owner(name * 2654435761)
		if owners[name] == 2 {
			if o == 2 {
				t.Fatalf("name %d still owned by ejected shard", name)
			}
			moved++
			continue
		}
		if o != owners[name] {
			t.Fatalf("name %d moved from healthy shard %d to %d on unrelated ejection", name, owners[name], o)
		}
	}
	if moved == 0 {
		t.Fatal("ejection moved no names")
	}
}

// TestProxyAndScatterMatchSingleProcess: every front-door answer —
// proxied or scatter-gathered — is byte-equal to the single-process
// answer, stretch included.
func TestProxyAndScatterMatchSingleProcess(t *testing.T) {
	c, servers, _ := bootCluster(t, 2, 90, time.Hour)
	front := httptest.NewServer(c.Handler())
	defer front.Close()
	fc := client.New(front.URL)

	solo := servers[0] // shards are identical; shard 0 IS the single-process answer
	g := solo.Scheme().Network().Graph()
	ctx := context.Background()
	for u := 0; u < g.N(); u += 7 {
		for v := 1; v < g.N(); v += 11 {
			src, dst := g.Name(compactroute.NodeID(u)), g.Name(compactroute.NodeID(v))
			got, err := fc.RouteByName(ctx, src, dst)
			if err != nil {
				t.Fatalf("front route %d→%d: %v", src, dst, err)
			}
			want, err := solo.Scheme().RouteByName(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			if got.Delivered != want.Delivered || got.Cost != want.Cost ||
				got.Hops != want.Hops || got.HeaderBits != want.HeaderBits ||
				got.ShortestCost != want.ShortestCost {
				t.Fatalf("route %d→%d diverged: front %+v solo %+v", src, dst, got, want)
			}
			// The wire carries stretch 0 for the degenerate self-route
			// (no shortest cost to divide by); Result.Stretch() says 1.
			if want.ShortestCost > 0 && got.Stretch != want.Stretch() {
				t.Fatalf("route %d→%d stretch %v, solo %v", src, dst, got.Stretch, want.Stretch())
			}
		}
	}
	st := c.Stats()
	if st.Proxied == 0 || st.Scattered == 0 {
		t.Fatalf("expected both proxied and scattered routes, got %+v", st)
	}
	if st.Routes != st.Proxied+st.Scattered {
		t.Fatalf("route accounting off: %+v", st)
	}

	// 422 passes through the front-door untouched.
	if _, err := fc.RouteByName(ctx, 0xFFFFFFFF, g.Name(0)); !client.IsStatus(err, 422) {
		t.Fatalf("unknown src through front-door: %v, want 422", err)
	}
}

// TestClusterSkewDetectionAndConvergence: a shard rebuilt out-of-band
// (behind the front-door's back) makes cross-shard merges refuse with
// 409 — and one coordinated rebuild converges the cluster again.
func TestClusterSkewDetectionAndConvergence(t *testing.T) {
	c, servers, _ := bootCluster(t, 2, 60, time.Hour)
	front := httptest.NewServer(c.Handler())
	defer front.Close()
	fc := client.New(front.URL)
	ctx := context.Background()
	g := servers[0].Scheme().Network().Graph()

	// One mutation through the front-door: both logs get it.
	mut := compactroute.MutSetWeight(g.Name(0), firstNeighborName(servers[0]), 2)
	if _, err := fc.Mutate(ctx, mut); err != nil {
		t.Fatal(err)
	}
	// Shard 0 rebuilds OUT-OF-BAND: the cluster now straddles
	// versions 1 and 0.
	if _, err := servers[0].Rebuild(ctx); err != nil {
		t.Fatal(err)
	}

	// Find a cross-shard pair and route it: version skew, 409.
	var sawSkew bool
	for u := 0; u < g.N() && !sawSkew; u++ {
		for v := 0; v < g.N(); v++ {
			src, dst := g.Name(compactroute.NodeID(u)), g.Name(compactroute.NodeID(v))
			if c.Owner(src) == c.Owner(dst) {
				continue
			}
			_, err := fc.RouteByName(ctx, src, dst)
			if !client.IsStatus(err, http.StatusConflict) {
				t.Fatalf("cross-shard route across skewed versions: %v, want 409", err)
			}
			sawSkew = true
			break
		}
	}
	if !sawSkew {
		t.Fatal("no cross-shard pair found")
	}
	if c.Stats().SkewObserved == 0 {
		t.Fatal("skew not counted")
	}

	// One coordinated rebuild converges: shard 0 stages its serving
	// version (nothing pending), shard 1 stages the same ID from its
	// log, and both commit.
	v, _, err := c.Rebuild(ctx)
	if err != nil {
		t.Fatalf("converging rebuild: %v", err)
	}
	if v.ID != 1 {
		t.Fatalf("converged at version %d, want 1", v.ID)
	}
	for i, s := range servers {
		if sv, _ := s.Version(); sv.ID != 1 {
			t.Fatalf("shard %d at version %d after convergence", i, sv.ID)
		}
	}
	// Cross-shard routes flow again.
	if _, err := fc.RouteByName(ctx, g.Name(0), g.Name(1)); err != nil {
		t.Fatalf("route after convergence: %v", err)
	}
}

// TestEjectionFailoverAndReadmission: a shard dying mid-traffic is
// ejected and its queries fail over; it is re-admitted once it both
// answers again and matches a healthy peer's log — and held out
// forever when it missed mutations.
func TestEjectionFailoverAndReadmission(t *testing.T) {
	const healthEvery = 20 * time.Millisecond
	c, servers, wraps := bootCluster(t, 2, 60, healthEvery)
	front := httptest.NewServer(c.Handler())
	defer front.Close()
	fc := client.New(front.URL)
	ctx := context.Background()
	g := servers[0].Scheme().Network().Graph()

	// Kill shard 1 and push enough routes that some hash to it: every
	// one must still succeed (failover), and the shard must end up
	// ejected.
	wraps[1].down.Store(true)
	for u := 0; u < 40; u++ {
		src, dst := g.Name(compactroute.NodeID(u)), g.Name(compactroute.NodeID((u+7)%g.N()))
		if _, err := fc.RouteByName(ctx, src, dst); err != nil {
			t.Fatalf("route %d→%d during shard death: %v", src, dst, err)
		}
	}
	st := c.Stats()
	if st.Healthy != 1 || st.Ejections == 0 || st.Failovers == 0 {
		t.Fatalf("after shard death: %+v", st)
	}

	// Revive it unchanged: the health loop re-admits (logs match).
	wraps[1].down.Store(false)
	deadline := time.Now().Add(10 * time.Second)
	for c.healthyCount() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("revived shard never re-admitted: %+v", c.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if c.Stats().Readmissions == 0 {
		t.Fatal("readmission not counted")
	}

	// Kill it again, mutate through the front-door (only shard 0 logs
	// it), revive: the divergent shard must STAY out.
	wraps[1].down.Store(true)
	if _, err := fc.RouteByName(ctx, g.Name(1), g.Name(2)); err != nil {
		t.Fatalf("route during second death: %v", err)
	}
	// Drive routes until the ejection lands (the first may have hit
	// only shard 0's names).
	deadline = time.Now().Add(10 * time.Second)
	for c.healthyCount() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("second ejection never happened: %+v", c.Stats())
		}
		if _, err := fc.RouteByName(ctx, g.Name(1), g.Name(2)); err != nil {
			t.Fatalf("route during second death: %v", err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	mut := compactroute.MutSetWeight(g.Name(0), firstNeighborName(servers[0]), 3)
	if _, err := fc.Mutate(ctx, mut); err != nil {
		t.Fatal(err)
	}
	wraps[1].down.Store(false)
	// Give the health loop several probe windows: the shard answers,
	// but its log is short, so it must not come back.
	time.Sleep(12 * healthEvery)
	if got := c.healthyCount(); got != 1 {
		t.Fatalf("divergent shard re-admitted (healthy=%d)", got)
	}
}

// firstNeighborName returns the name of some neighbor of node 0, so
// tests can issue a valid setweight mutation.
func firstNeighborName(s *server.Server) uint64 {
	g := s.Scheme().Network().Graph()
	var name uint64
	g.Neighbors(0, func(e graph.Edge) bool {
		name = g.Name(e.To)
		return false
	})
	return name
}
