// Package compactroute is a reproduction of "On Space-Stretch
// Trade-Offs: Upper Bounds" (Abraham, Gavoille, Malkhi; SPAA 2006): a
// name-independent, scale-free compact routing scheme for arbitrary
// weighted graphs with stretch O(k) and Õ(n^{1/k})-bit routing tables
// per node, independent of the network's aspect ratio.
//
// The package is a facade over the internal implementation:
//
//	b := compactroute.NewBuilder()
//	a := b.AddNode(0xCAFE) // nodes have arbitrary 64-bit names
//	c := b.AddNode(0xBEEF)
//	b.AddEdge(a, c, 2.5)
//	net, _ := compactroute.BuildNetwork(b)
//	scheme, _ := compactroute.NewScheme(net, compactroute.Options{K: 3})
//	res, _ := scheme.RouteByName(0xCAFE, 0xBEEF)
//	fmt.Println(res.Cost, res.Hops)
//
// Alongside the paper's scheme the package exposes the comparison
// baselines its evaluation needs (full tables, an aspect-ratio-
// dependent Awerbuch–Peleg-style hierarchy, a scale-free landmark
// chain, and Thorup–Zwick labeled routing), synthetic network
// generators, and stretch statistics. See DESIGN.md for the full
// system inventory and EXPERIMENTS.md for the reproduced results.
package compactroute

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"compactroute/internal/baseline"
	"compactroute/internal/bitsize"
	"compactroute/internal/codec"
	"compactroute/internal/core"
	"compactroute/internal/gio"
	"compactroute/internal/graph"
	"compactroute/internal/sim"
	"compactroute/internal/sssp"
	"compactroute/internal/stats"
)

// NodeID identifies a node internally; the routing model itself only
// ever addresses nodes by their arbitrary uint64 names.
type NodeID = graph.NodeID

// GraphBuilder accumulates a weighted undirected network.
type GraphBuilder = graph.Builder

// NewBuilder returns an empty network builder.
func NewBuilder() *GraphBuilder { return graph.NewBuilder() }

// Stretch aggregates routed-vs-shortest ratios.
type Stretch = stats.Stretch

// Network is a frozen graph with its shortest-path metric, shared by
// every scheme built on it. The metric is optional (networks from
// Load start without one) and published atomically, so routing may
// proceed concurrently with a late EnsureMetric.
type Network struct {
	g        *graph.Graph
	apsp     atomic.Pointer[[]*sssp.Result]
	metricMu sync.Mutex // serializes EnsureMetric computations
}

// BuildNetwork freezes the builder and precomputes the metric.
func BuildNetwork(b *GraphBuilder) (*Network, error) {
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	return WrapGraph(g), nil
}

// WrapGraph adopts an already-built graph (e.g. from the generators).
// The shortest-path metric is computed across all cores.
func WrapGraph(g *graph.Graph) *Network {
	n := &Network{g: g}
	all := sssp.AllPairsParallel(g, 0)
	n.apsp.Store(&all)
	return n
}

// metric returns the all-pairs results, or nil when absent.
func (n *Network) metric() []*sssp.Result {
	if p := n.apsp.Load(); p != nil {
		return *p
	}
	return nil
}

// Graph exposes the underlying graph (read-only use).
func (n *Network) Graph() *graph.Graph { return n.g }

// N returns the node count.
func (n *Network) N() int { return n.g.N() }

// HasMetric reports whether the all-pairs shortest-path metric is
// available. Networks from BuildNetwork/WrapGraph always have it;
// networks rehydrated by Load do not until EnsureMetric is called —
// the entire point of persistence is serving queries without paying
// for it.
func (n *Network) HasMetric() bool { return n.apsp.Load() != nil }

// EnsureMetric computes the metric if absent (across all cores). It
// is safe to call concurrently with routing: the metric is published
// atomically, and concurrent callers compute it at most once.
func (n *Network) EnsureMetric() {
	if n.HasMetric() {
		return
	}
	n.metricMu.Lock()
	defer n.metricMu.Unlock()
	if !n.HasMetric() {
		all := sssp.AllPairsParallel(n.g, 0)
		n.apsp.Store(&all)
	}
}

// Distance returns the shortest-path distance between two nodes. It
// panics on a loaded network without EnsureMetric.
func (n *Network) Distance(u, v NodeID) float64 {
	all := n.metric()
	if all == nil {
		panic("compactroute: network has no metric; call EnsureMetric first")
	}
	return all[u].Dist[v]
}

// shortest returns d(u,v) when the metric is available, else 0 (which
// Result.Stretch treats as "unknown", reporting 1).
func (n *Network) shortest(u, v NodeID) float64 {
	all := n.metric()
	if all == nil {
		return 0
	}
	return all[u].Dist[v]
}

// buildMetric returns the metric for scheme construction, computing
// it first when building on a loaded network (construction needs the
// full metric by definition).
func (n *Network) buildMetric() []*sssp.Result {
	n.EnsureMetric()
	return n.metric()
}

// Options configures the paper's scheme (see core.Params for the
// experiment-only knobs).
type Options struct {
	// K is the space-stretch trade-off parameter: stretch O(k),
	// tables Õ(n^{1/k}).
	K int
	// Seed makes the build reproducible. Zero is a valid seed.
	Seed uint64
	// SFactor optionally scales the landmark set constants; 0 means
	// the paper's 16 (see DESIGN.md #5).
	SFactor float64
}

// Result describes one routed message.
type Result struct {
	Delivered bool
	// Cost is the total weight of the traversed path.
	Cost float64
	// Hops is the number of edges traversed.
	Hops int
	// HeaderBits is the largest routing header observed in flight.
	HeaderBits int64
	// ShortestCost is the shortest-path distance (for stretch).
	ShortestCost float64
}

// Stretch returns Cost/ShortestCost (1 for self-routes).
func (r Result) Stretch() float64 {
	if r.ShortestCost <= 0 {
		return 1
	}
	return r.Cost / r.ShortestCost
}

// Scheme is a built routing scheme bound to its network.
type Scheme struct {
	net    *Network
	router sim.Router
	engine *sim.Engine
	table  interface {
		MaxTableBits() bitsize.Bits
		MeanTableBits() float64
	}
}

// NewScheme builds the paper's scheme (Theorem 1) over the network.
func NewScheme(net *Network, o Options) (*Scheme, error) {
	s, err := core.BuildWithAPSP(net.g, net.buildMetric(), core.Params{
		K:       o.K,
		Seed:    o.Seed,
		SFactor: o.SFactor,
	})
	if err != nil {
		return nil, err
	}
	return newScheme(net, s, s), nil
}

// NewSchemeFromParams exposes every experiment knob (ablation modes,
// load factors); see core.Params.
func NewSchemeFromParams(net *Network, p core.Params) (*Scheme, error) {
	s, err := core.BuildWithAPSP(net.g, net.buildMetric(), p)
	if err != nil {
		return nil, err
	}
	return newScheme(net, s, s), nil
}

// Core returns the underlying core scheme when this Scheme wraps one
// (for build reports and storage breakdowns), else nil.
func (s *Scheme) Core() *core.Scheme {
	c, _ := s.router.(*core.Scheme)
	return c
}

// NewFullTable builds the stretch-1 full-table baseline.
func NewFullTable(net *Network) (*Scheme, error) {
	f, err := baseline.NewFullTable(net.g, net.buildMetric())
	if err != nil {
		return nil, err
	}
	return newScheme(net, f, f), nil
}

// NewAPCover builds the aspect-ratio-dependent tree-cover baseline.
func NewAPCover(net *Network, k int, seed uint64) (*Scheme, error) {
	a, err := baseline.NewAPCover(net.g, net.buildMetric(), baseline.APCoverParams{K: k, Seed: seed})
	if err != nil {
		return nil, err
	}
	return newScheme(net, a, a), nil
}

// NewLandmarkChain builds the scale-free unbounded-stretch baseline.
func NewLandmarkChain(net *Network, k int, seed uint64) (*Scheme, error) {
	l, err := baseline.NewLandmarkChain(net.g, net.buildMetric(), baseline.LandmarkChainParams{K: k, Seed: seed})
	if err != nil {
		return nil, err
	}
	return newScheme(net, l, l), nil
}

// NewTZ builds the Thorup–Zwick labeled baseline.
func NewTZ(net *Network, k int, seed uint64) (*Scheme, error) {
	z, err := baseline.NewTZ(net.g, net.buildMetric(), baseline.TZParams{K: k, Seed: seed})
	if err != nil {
		return nil, err
	}
	return newScheme(net, z, z), nil
}

func newScheme(net *Network, r sim.Router, t interface {
	MaxTableBits() bitsize.Bits
	MeanTableBits() float64
}) *Scheme {
	return &Scheme{net: net, router: r, engine: sim.NewEngine(net.g), table: t}
}

// Name identifies the scheme in tables.
func (s *Scheme) Name() string { return s.router.Name() }

// MaxTableBits returns the largest per-node routing table.
func (s *Scheme) MaxTableBits() int64 { return int64(s.table.MaxTableBits()) }

// MeanTableBits returns the mean per-node routing table size.
func (s *Scheme) MeanTableBits() float64 { return s.table.MeanTableBits() }

// Route delivers a message between internal ids.
func (s *Scheme) Route(src, dst NodeID) (Result, error) {
	if int(src) >= s.net.N() || int(dst) >= s.net.N() || src < 0 || dst < 0 {
		return Result{}, fmt.Errorf("compactroute: invalid endpoint %d→%d", src, dst)
	}
	res, err := s.engine.Route(s.router, src, s.net.g.Name(dst))
	if err != nil {
		return Result{}, err
	}
	return Result{
		Delivered:    res.Delivered,
		Cost:         res.Cost,
		Hops:         res.Hops,
		HeaderBits:   int64(res.MaxHeaderBits),
		ShortestCost: s.net.shortest(src, dst),
	}, nil
}

// RouteByName delivers a message between external names — the
// operation the name-independent model is about.
func (s *Scheme) RouteByName(srcName, dstName uint64) (Result, error) {
	src, ok := s.net.g.Lookup(srcName)
	if !ok {
		return Result{}, fmt.Errorf("compactroute: unknown source name %#x", srcName)
	}
	res, err := s.engine.Route(s.router, src, dstName)
	if err != nil {
		return Result{}, err
	}
	out := Result{
		Delivered:  res.Delivered,
		Cost:       res.Cost,
		Hops:       res.Hops,
		HeaderBits: int64(res.MaxHeaderBits),
	}
	if dst, ok := s.net.g.Lookup(dstName); ok {
		out.ShortestCost = s.net.shortest(src, dst)
	}
	return out, nil
}

// AddLabeled registers a node by an arbitrary string label (hashed to
// its 64-bit routing name per §2.1's long-label generalization). Use
// on a builder before BuildNetwork.
func AddLabeled(b *GraphBuilder, label string) NodeID { return b.AddLabeled(label) }

// RouteByLabel delivers a message between string-labeled nodes.
func (s *Scheme) RouteByLabel(srcLabel, dstLabel string) (Result, error) {
	src, ok := s.net.g.LookupLabel(srcLabel)
	if !ok {
		return Result{}, fmt.Errorf("compactroute: unknown source label %q", srcLabel)
	}
	dst, ok := s.net.g.LookupLabel(dstLabel)
	if !ok {
		return Result{}, fmt.Errorf("compactroute: unknown destination label %q", dstLabel)
	}
	return s.Route(src, dst)
}

// Save persists a built paper-scheme to w in the versioned binary
// format of internal/codec (magic "CRSC"): the routing tables, the
// landmark and cover trees, the decomposition, and the storage
// accounting inputs. Only schemes from NewScheme/NewSchemeFromParams
// can be saved; the comparison baselines have no persistent form.
func Save(w io.Writer, s *Scheme) error {
	c := s.Core()
	if c == nil {
		return fmt.Errorf("compactroute: only the paper's scheme can be saved, not %s", s.Name())
	}
	return codec.Encode(w, c)
}

// Load reads a scheme saved by Save and rehydrates it into
// ready-to-route form without recomputing all-pairs shortest paths —
// the build-once/route-many entry point. The loaded network has no
// metric: RouteByName returns correct Cost and Hops, but ShortestCost
// is 0 (and Stretch reports 1) until Network().EnsureMetric is called.
func Load(r io.Reader) (*Scheme, error) {
	c, err := codec.Decode(r)
	if err != nil {
		return nil, err
	}
	net := &Network{g: c.G()}
	return newScheme(net, c, c), nil
}

// Network exposes the scheme's network (read-only use).
func (s *Scheme) Network() *Network { return s.net }

// SaveNetwork writes the network's graph in the text workload format
// (see internal/gio): replayable via LoadNetwork, cmd/routesim -graph,
// and cmd/graphgen.
func SaveNetwork(w io.Writer, net *Network) error { return gio.Write(w, net.g) }

// LoadNetwork reads a graph in the text workload format and computes
// its metric.
func LoadNetwork(r io.Reader) (*Network, error) {
	g, err := gio.Read(r)
	if err != nil {
		return nil, err
	}
	return WrapGraph(g), nil
}
