// Package compactroute is a reproduction of "On Space-Stretch
// Trade-Offs: Upper Bounds" (Abraham, Gavoille, Malkhi; SPAA 2006): a
// name-independent, scale-free compact routing scheme for arbitrary
// weighted graphs with stretch O(k) and Õ(n^{1/k})-bit routing tables
// per node, independent of the network's aspect ratio.
//
// The paper describes a *family* of schemes along the space-stretch
// curve; the package exposes the whole family through one registry.
// Every scheme — the paper's (kind "paper"), the stretch-1 full-table
// strawman ("fulltable"), the Awerbuch–Peleg-style hierarchy
// ("apcover"), the scale-free landmark chain ("landmark"), and
// Thorup–Zwick labeled routing ("tz") — is built by name with Build
// and served, benchmarked, and persisted through the same interface:
//
//	b := compactroute.NewBuilder()
//	a := b.AddNode(0xCAFE) // nodes have arbitrary 64-bit names
//	c := b.AddNode(0xBEEF)
//	b.AddEdge(a, c, 2.5)
//	net, _ := compactroute.BuildNetwork(b)
//	scheme, _ := compactroute.Build(net, compactroute.Config{Kind: "paper", K: 3})
//	res, _ := scheme.RouteByName(0xCAFE, 0xBEEF)
//	fmt.Println(res.Cost, res.Hops)
//
// Routing honors cancellation: RouteCtx/RouteByNameCtx thread the
// context into the hop loop, so long multi-hop routes abort promptly
// with a wrapped context.Canceled. Failures carry the typed error
// taxonomy of errors.go (ErrUnknownName, ErrSaturated, …), matched
// with errors.Is. Persistable kinds round-trip through Save/Load in
// the kind-tagged binary format of internal/codec.
//
// At scale, construction need not materialize the Θ(n²) all-pairs
// metric: BuildStream feeds builders a parallel per-source
// shortest-path stream (DESIGN.md §6) with bit-identical results, and
// WrapGraphLazy adopts a graph without paying for its metric at all.
//
// Topologies need not be static either: NewDynamic serves a live
// network through versioned snapshots — mutations accumulate in an
// append-only log (Apply), rebuilds reconstruct every configured kind
// in the background (Rebuild), and a hot swap publishes the result
// with a microsecond pause while in-flight routes finish on the
// version they started on (DESIGN.md §7).
//
// Alongside the schemes the package exposes synthetic network
// generators and stretch statistics. See DESIGN.md for the full
// system inventory (and the v1→v2 API migration table) and
// EXPERIMENTS.md for the reproduced results.
package compactroute

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"compactroute/internal/baseline"
	"compactroute/internal/bitsize"
	"compactroute/internal/codec"
	"compactroute/internal/core"
	"compactroute/internal/gio"
	"compactroute/internal/graph"
	"compactroute/internal/schemes"
	"compactroute/internal/sim"
	"compactroute/internal/sssp"
	"compactroute/internal/stats"
)

// NodeID identifies a node internally; the routing model itself only
// ever addresses nodes by their arbitrary uint64 names.
type NodeID = graph.NodeID

// GraphBuilder accumulates a weighted undirected network.
type GraphBuilder = graph.Builder

// NewBuilder returns an empty network builder.
func NewBuilder() *GraphBuilder { return graph.NewBuilder() }

// Stretch aggregates routed-vs-shortest ratios.
type Stretch = stats.Stretch

// internal type shorthands shared with registry.go.
type (
	graphT     = graph.Graph
	ssspResult = sssp.Result
	bitsT      = bitsize.Bits
)

// tableSizer is the storage-accounting face every scheme presents.
type tableSizer interface {
	MaxTableBits() bitsize.Bits
	MeanTableBits() float64
}

// Network is a frozen graph with its shortest-path metric, shared by
// every scheme built on it. The metric is optional (networks from
// Load start without one) and published atomically, so routing may
// proceed concurrently with a late EnsureMetric.
type Network struct {
	g        *graph.Graph
	apsp     atomic.Pointer[[]*sssp.Result]
	metricMu sync.Mutex // serializes EnsureMetric computations
}

// BuildNetwork freezes the builder and precomputes the metric.
func BuildNetwork(b *GraphBuilder) (*Network, error) {
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	return WrapGraph(g), nil
}

// WrapGraph adopts an already-built graph (e.g. from the generators).
// The shortest-path metric is computed across all cores.
func WrapGraph(g *graph.Graph) *Network {
	n := &Network{g: g}
	all := sssp.AllPairsParallel(g, 0)
	n.apsp.Store(&all)
	return n
}

// WrapGraphLazy adopts an already-built graph without computing its
// Θ(n²) metric — the entry point for building at scales where the
// materialized metric is the bottleneck. Schemes built over a lazy
// network with BuildStream construct from a result stream that the
// streaming kinds consume in bounded memory (kind "paper"
// materializes for the build's duration — see BuildStream); routed
// results report MetricKnown == false (stretch unknown, exactly like
// a network rehydrated by Load) until EnsureMetric is called.
func WrapGraphLazy(g *graph.Graph) *Network { return &Network{g: g} }

// adoptNetwork wraps a graph together with already-computed all-pairs
// results (no recomputation) — the bridge registered builders use.
func adoptNetwork(g *graph.Graph, apsp []*sssp.Result) *Network {
	n := &Network{g: g}
	if apsp != nil {
		n.apsp.Store(&apsp)
	}
	return n
}

// metric returns the all-pairs results, or nil when absent.
func (n *Network) metric() []*sssp.Result {
	if p := n.apsp.Load(); p != nil {
		return *p
	}
	return nil
}

// Graph exposes the underlying graph (read-only use).
func (n *Network) Graph() *graph.Graph { return n.g }

// N returns the node count.
func (n *Network) N() int { return n.g.N() }

// HasMetric reports whether the all-pairs shortest-path metric is
// available. Networks from BuildNetwork/WrapGraph always have it;
// networks rehydrated by Load do not until EnsureMetric is called —
// the entire point of persistence is serving queries without paying
// for it.
func (n *Network) HasMetric() bool { return n.apsp.Load() != nil }

// EnsureMetric computes the metric if absent (across all cores). It
// is safe to call concurrently with routing: the metric is published
// atomically, and concurrent callers compute it at most once.
func (n *Network) EnsureMetric() {
	if n.HasMetric() {
		return
	}
	n.metricMu.Lock()
	defer n.metricMu.Unlock()
	if !n.HasMetric() {
		all := sssp.AllPairsParallel(n.g, 0)
		n.apsp.Store(&all)
	}
}

// Distance returns the shortest-path distance between two nodes. It
// panics on a loaded network without EnsureMetric; use TryDistance
// where the metric may legitimately be absent.
func (n *Network) Distance(u, v NodeID) float64 {
	d, err := n.TryDistance(u, v)
	if err != nil {
		panic("compactroute: network has no metric; call EnsureMetric first")
	}
	return d
}

// TryDistance returns the shortest-path distance between two nodes,
// or a wrapped ErrNoMetric when the network's metric is absent.
func (n *Network) TryDistance(u, v NodeID) (float64, error) {
	all := n.metric()
	if all == nil {
		return 0, fmt.Errorf("compactroute: distance %d→%d: %w", u, v, ErrNoMetric)
	}
	return all[u].Dist[v], nil
}

// shortest returns d(u,v) and whether the metric was available to
// answer (Result.MetricKnown).
func (n *Network) shortest(u, v NodeID) (float64, bool) {
	all := n.metric()
	if all == nil {
		return 0, false
	}
	return all[u].Dist[v], true
}

// buildMetric returns the metric for scheme construction, computing
// it first when building on a loaded network (construction needs the
// full metric by definition).
func (n *Network) buildMetric() []*sssp.Result {
	n.EnsureMetric()
	return n.metric()
}

// Options configures the paper's scheme for NewScheme (see core.Params
// for the experiment-only knobs). New code should prefer
// Build(net, Config{Kind: "paper", ...}).
type Options struct {
	// K is the space-stretch trade-off parameter: stretch O(k),
	// tables Õ(n^{1/k}).
	K int
	// Seed makes the build reproducible. Zero is a valid seed.
	Seed uint64
	// SFactor optionally scales the landmark set constants; 0 means
	// the paper's 16 (see DESIGN.md #5).
	SFactor float64
}

// Result describes one routed message.
type Result struct {
	Delivered bool
	// Cost is the total weight of the traversed path.
	Cost float64
	// Hops is the number of edges traversed.
	Hops int
	// HeaderBits is the largest routing header observed in flight.
	HeaderBits int64
	// ShortestCost is the shortest-path distance (for stretch). It is
	// meaningful only when MetricKnown.
	ShortestCost float64
	// MetricKnown reports that ShortestCost is real: the network had
	// its metric and the destination resolved when this result was
	// computed. False means "unknown" — never "distance zero" — and
	// Stretch then reports its sentinel 1. Measurement paths must
	// check it so an unloaded metric can't masquerade as optimality.
	MetricKnown bool
}

// Stretch returns Cost/ShortestCost. When the stretch is unknowable
// (self-routes, or MetricKnown == false because the network had no
// metric) it returns the sentinel 1; callers that must distinguish
// "optimal" from "unknown" check MetricKnown.
func (r Result) Stretch() float64 {
	if r.ShortestCost <= 0 {
		return 1
	}
	return r.Cost / r.ShortestCost
}

// Scheme is a built routing scheme bound to its network.
type Scheme struct {
	net    *Network
	kind   string // registry kind; "" for pre-registry constructions
	router sim.Router
	engine *sim.Engine
	table  tableSizer
}

// NewScheme builds the paper's scheme (Theorem 1) over the network.
// Equivalent to Build with Config{Kind: "paper"}.
func NewScheme(net *Network, o Options) (*Scheme, error) {
	return Build(net, Config{Kind: KindPaper, K: o.K, Seed: o.Seed, SFactor: o.SFactor})
}

// NewSchemeFromParams exposes every experiment knob (ablation modes,
// load factors); see core.Params.
func NewSchemeFromParams(net *Network, p core.Params) (*Scheme, error) {
	s, err := core.BuildWithAPSP(net.g, net.buildMetric(), p)
	if err != nil {
		return nil, err
	}
	return newScheme(net, KindPaper, s, s), nil
}

// Core returns the underlying core scheme when this Scheme wraps one
// (for build reports and storage breakdowns), else nil.
func (s *Scheme) Core() *core.Scheme {
	c, _ := s.router.(*core.Scheme)
	return c
}

// The built-in registry kinds (see Kinds for the full, live list),
// aliased from internal/schemes, the single owner of the strings.
const (
	KindPaper         = schemes.KindPaper
	KindFullTable     = schemes.KindFullTable
	KindAPCover       = schemes.KindAPCover
	KindLandmarkChain = schemes.KindLandmarkChain
	KindTZ            = schemes.KindTZ
)

// NewFullTable builds the stretch-1 full-table baseline.
// Equivalent to Build with Config{Kind: "fulltable"}.
func NewFullTable(net *Network) (*Scheme, error) {
	return Build(net, Config{Kind: KindFullTable})
}

// NewAPCover builds the aspect-ratio-dependent tree-cover baseline.
// Equivalent to Build with Config{Kind: "apcover"}.
func NewAPCover(net *Network, k int, seed uint64) (*Scheme, error) {
	return Build(net, Config{Kind: KindAPCover, K: k, Seed: seed})
}

// NewLandmarkChain builds the scale-free unbounded-stretch baseline.
// Equivalent to Build with Config{Kind: "landmark"}.
func NewLandmarkChain(net *Network, k int, seed uint64) (*Scheme, error) {
	return Build(net, Config{Kind: KindLandmarkChain, K: k, Seed: seed})
}

// NewTZ builds the Thorup–Zwick labeled baseline.
// Equivalent to Build with Config{Kind: "tz"}.
func NewTZ(net *Network, k int, seed uint64) (*Scheme, error) {
	return Build(net, Config{Kind: KindTZ, K: k, Seed: seed})
}

func newScheme(net *Network, kind string, r sim.Router, t tableSizer) *Scheme {
	return &Scheme{net: net, kind: kind, router: r, engine: sim.NewEngine(net.g), table: t}
}

// Name identifies the scheme in tables.
func (s *Scheme) Name() string { return s.router.Name() }

// Kind returns the registry kind this scheme was built (or loaded)
// as, e.g. "paper" or "tz".
func (s *Scheme) Kind() string { return s.kind }

// MaxTableBits returns the largest per-node routing table.
func (s *Scheme) MaxTableBits() int64 { return int64(s.table.MaxTableBits()) }

// MeanTableBits returns the mean per-node routing table size.
func (s *Scheme) MeanTableBits() float64 { return s.table.MeanTableBits() }

// Route delivers a message between internal ids.
func (s *Scheme) Route(src, dst NodeID) (Result, error) {
	return s.RouteCtx(context.Background(), src, dst)
}

// RouteCtx is Route honoring cancellation: the context threads into
// the hop loop, so canceling it aborts a long route promptly with a
// wrapped context.Canceled (or DeadlineExceeded).
//
//crlint:hotpath
func (s *Scheme) RouteCtx(ctx context.Context, src, dst NodeID) (Result, error) {
	if int(src) >= s.net.N() || int(dst) >= s.net.N() || src < 0 || dst < 0 {
		return Result{}, fmt.Errorf("compactroute: invalid endpoint %d→%d", src, dst)
	}
	res, err := s.engine.RouteCtx(ctx, s.router, src, s.net.g.Name(dst))
	if err != nil {
		return Result{}, err
	}
	out := Result{
		Delivered:  res.Delivered,
		Cost:       res.Cost,
		Hops:       res.Hops,
		HeaderBits: int64(res.MaxHeaderBits),
	}
	out.ShortestCost, out.MetricKnown = s.net.shortest(src, dst)
	return out, nil
}

// RouteByName delivers a message between external names — the
// operation the name-independent model is about.
func (s *Scheme) RouteByName(srcName, dstName uint64) (Result, error) {
	return s.RouteByNameCtx(context.Background(), srcName, dstName)
}

// RouteByNameCtx is RouteByName honoring cancellation. An unknown
// source name errors with a wrapped ErrUnknownName; an unknown
// destination is searched for and reported as Delivered == false
// (that asymmetry is the name-independent model).
//
//crlint:hotpath
func (s *Scheme) RouteByNameCtx(ctx context.Context, srcName, dstName uint64) (Result, error) {
	src, ok := s.net.g.Lookup(srcName)
	if !ok {
		return Result{}, fmt.Errorf("compactroute: source name %#x: %w", srcName, ErrUnknownName)
	}
	res, err := s.engine.RouteCtx(ctx, s.router, src, dstName)
	if err != nil {
		return Result{}, err
	}
	out := Result{
		Delivered:  res.Delivered,
		Cost:       res.Cost,
		Hops:       res.Hops,
		HeaderBits: int64(res.MaxHeaderBits),
	}
	if dst, ok := s.net.g.Lookup(dstName); ok {
		out.ShortestCost, out.MetricKnown = s.net.shortest(src, dst)
	}
	return out, nil
}

// RoutePathByNameCtx is RouteByNameCtx with the traversed path
// returned as external names, source first (one entry for a
// self-route; a failed search ends wherever the scheme gave up). It
// runs on a tracing engine — one allocation per hop more than the
// untraced route — and exists for layers that must inspect the walk:
// the serving tier's fault repair (serve.Repairer) holds each path
// against its down-link overlay.
func (s *Scheme) RoutePathByNameCtx(ctx context.Context, srcName, dstName uint64) (Result, []uint64, error) {
	src, ok := s.net.g.Lookup(srcName)
	if !ok {
		return Result{}, nil, fmt.Errorf("compactroute: source name %#x: %w", srcName, ErrUnknownName)
	}
	eng := sim.NewEngine(s.net.g)
	eng.Trace = true
	res, err := eng.RouteCtx(ctx, s.router, src, dstName)
	if err != nil {
		return Result{}, nil, err
	}
	out := Result{
		Delivered:  res.Delivered,
		Cost:       res.Cost,
		Hops:       res.Hops,
		HeaderBits: int64(res.MaxHeaderBits),
	}
	if dst, ok := s.net.g.Lookup(dstName); ok {
		out.ShortestCost, out.MetricKnown = s.net.shortest(src, dst)
	}
	path := make([]uint64, len(res.Path))
	for i, id := range res.Path {
		path[i] = s.net.g.Name(id)
	}
	return out, path, nil
}

// AddLabeled registers a node by an arbitrary string label (hashed to
// its 64-bit routing name per §2.1's long-label generalization). Use
// on a builder before BuildNetwork.
func AddLabeled(b *GraphBuilder, label string) NodeID { return b.AddLabeled(label) }

// RouteByLabel delivers a message between string-labeled nodes.
func (s *Scheme) RouteByLabel(srcLabel, dstLabel string) (Result, error) {
	return s.RouteByLabelCtx(context.Background(), srcLabel, dstLabel)
}

// RouteByLabelCtx is RouteByLabel honoring cancellation. Unknown
// labels error with a wrapped ErrUnknownLabel.
func (s *Scheme) RouteByLabelCtx(ctx context.Context, srcLabel, dstLabel string) (Result, error) {
	src, ok := s.net.g.LookupLabel(srcLabel)
	if !ok {
		return Result{}, fmt.Errorf("compactroute: source label %q: %w", srcLabel, ErrUnknownLabel)
	}
	dst, ok := s.net.g.LookupLabel(dstLabel)
	if !ok {
		return Result{}, fmt.Errorf("compactroute: destination label %q: %w", dstLabel, ErrUnknownLabel)
	}
	return s.RouteCtx(ctx, src, dst)
}

// Save persists a built scheme to w in the kind-tagged versioned
// binary format of internal/codec (magic "CRSC", format v2). Only
// persistable kinds can be saved — the paper's scheme (everything the
// construction computed: routing tables, landmark and cover trees,
// the decomposition, storage accounting inputs) and the full-table
// baseline (the next-hop tables). Other kinds error with a wrapped
// ErrNotPersistable.
func Save(w io.Writer, s *Scheme) error {
	p, err := codec.PayloadFor(s.router)
	if err != nil {
		return fmt.Errorf("compactroute: saving scheme: %w", err)
	}
	return codec.EncodePayload(w, p)
}

// Load reads a scheme saved by Save — any persistable kind, v1 or v2
// streams — and rehydrates it into ready-to-route form without
// recomputing all-pairs shortest paths: the build-once/route-many
// entry point. The loaded network has no metric: RouteByName returns
// correct Cost and Hops, but ShortestCost is unknown (MetricKnown ==
// false, Stretch reports 1) until Network().EnsureMetric is called.
func Load(r io.Reader) (*Scheme, error) {
	p, err := codec.DecodePayload(r)
	if err != nil {
		return nil, err
	}
	switch p.Kind {
	case codec.KindPaper:
		c, err := core.FromSnapshot(p.Core)
		if err != nil {
			return nil, err
		}
		return newScheme(&Network{g: c.G()}, KindPaper, c, c), nil
	case codec.KindFullTable:
		f, err := baseline.FullTableFromSnapshot(p.Full)
		if err != nil {
			return nil, err
		}
		return newScheme(&Network{g: f.G()}, KindFullTable, f, f), nil
	default:
		return nil, fmt.Errorf("compactroute: loading kind %q: %w", p.Kind, ErrNotPersistable)
	}
}

// Network exposes the scheme's network (read-only use).
func (s *Scheme) Network() *Network { return s.net }

// SaveNetwork writes the network's graph in the text workload format
// (see internal/gio): replayable via LoadNetwork, cmd/routesim -graph,
// and cmd/graphgen.
func SaveNetwork(w io.Writer, net *Network) error { return gio.Write(w, net.g) }

// LoadNetwork reads a graph in the text workload format and computes
// its metric.
func LoadNetwork(r io.Reader) (*Network, error) {
	g, err := gio.Read(r)
	if err != nil {
		return nil, err
	}
	return WrapGraph(g), nil
}
