package compactroute

import (
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	b := NewBuilder()
	a := b.AddNode(0xCAFE)
	c := b.AddNode(0xBEEF)
	d := b.AddNode(0xF00D)
	if err := b.AddEdge(a, c, 2.5); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(c, d, 1.5); err != nil {
		t.Fatal(err)
	}
	net, err := BuildNetwork(b)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScheme(net, Options{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RouteByName(0xCAFE, 0xF00D)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Delivered || res.Cost != 4 || res.Hops != 2 {
		t.Fatalf("quickstart route = %+v", res)
	}
	if res.Stretch() != 1 {
		t.Fatalf("stretch = %v", res.Stretch())
	}
}

func TestAllPublicSchemesOnOneNetwork(t *testing.T) {
	net := RandomNetwork(1, 40, 0.1, UniformWeights(1, 4))
	build := []func() (*Scheme, error){
		func() (*Scheme, error) { return NewScheme(net, Options{K: 2, Seed: 3}) },
		func() (*Scheme, error) { return NewFullTable(net) },
		func() (*Scheme, error) { return NewAPCover(net, 2, 3) },
		func() (*Scheme, error) { return NewLandmarkChain(net, 2, 3) },
		func() (*Scheme, error) { return NewTZ(net, 2, 3) },
	}
	for _, mk := range build {
		s, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		st, err := s.MeasureStretch(1)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if st.N() == 0 || st.Max() < 1 {
			t.Fatalf("%s: empty stretch", s.Name())
		}
		if s.MaxTableBits() <= 0 {
			t.Fatalf("%s: no table bits", s.Name())
		}
	}
}

func TestRouteByUnknownNames(t *testing.T) {
	net := RingNetwork(2, 10, UnitWeights())
	s, err := NewScheme(net, Options{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RouteByName(0xBAD, net.Graph().Name(0)); err == nil {
		t.Fatal("unknown source accepted")
	}
	// Unknown destination: the scheme must search and fail to deliver,
	// not error out.
	res, err := s.RouteByName(net.Graph().Name(0), 0xBAD)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered {
		t.Fatal("delivered to a phantom name")
	}
}

func TestNetworkDistance(t *testing.T) {
	net := GridNetwork(3, 3, 3, UnitWeights())
	if net.N() != 9 {
		t.Fatalf("N = %d", net.N())
	}
	if d := net.Distance(0, 8); d != 4 {
		t.Fatalf("corner distance = %v", d)
	}
}

func TestCoreAccessor(t *testing.T) {
	net := RingNetwork(4, 12, UnitWeights())
	s, err := NewScheme(net, Options{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Core() == nil {
		t.Fatal("core accessor nil for core scheme")
	}
	f, _ := NewFullTable(net)
	if f.Core() != nil {
		t.Fatal("core accessor non-nil for baseline")
	}
}

func TestMeasureStretchSampled(t *testing.T) {
	net := RandomNetwork(5, 30, 0.15, UnitWeights())
	s, err := NewFullTable(net)
	if err != nil {
		t.Fatal(err)
	}
	full, err := s.MeasureStretch(1)
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := s.MeasureStretch(3)
	if err != nil {
		t.Fatal(err)
	}
	if sampled.N() >= full.N() {
		t.Fatal("sampling did not reduce pairs")
	}
}

func TestInvalidRouteEndpoints(t *testing.T) {
	net := RingNetwork(6, 8, UnitWeights())
	s, _ := NewFullTable(net)
	if _, err := s.Route(-1, 2); err == nil {
		t.Fatal("negative id accepted")
	}
	if _, err := s.Route(0, 100); err == nil {
		t.Fatal("out of range id accepted")
	}
}

func TestRouteByLabel(t *testing.T) {
	b := NewBuilder()
	hosts := []string{"db-primary", "db-replica", "web-1", "web-2", "cache"}
	ids := make([]NodeID, len(hosts))
	for i, h := range hosts {
		ids[i] = AddLabeled(b, h)
	}
	for i := 1; i < len(ids); i++ {
		if err := b.AddEdge(ids[i-1], ids[i], float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	net, err := BuildNetwork(b)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScheme(net, Options{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RouteByLabel("db-primary", "cache")
	if err != nil || !res.Delivered {
		t.Fatalf("labeled route failed: %+v %v", res, err)
	}
	if res.Cost != 1+2+3+4 {
		t.Fatalf("labeled route cost %v", res.Cost)
	}
	if _, err := s.RouteByLabel("nope", "cache"); err == nil {
		t.Fatal("unknown source label accepted")
	}
	if _, err := s.RouteByLabel("cache", "nope"); err == nil {
		t.Fatal("unknown destination label accepted")
	}
}
