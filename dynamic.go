package compactroute

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"compactroute/internal/dynamic"
	"compactroute/internal/routeerr"
)

// Mutation is one topology change in the dynamic mutation log,
// addressed by external node names. Construct with the Mut* helpers
// or as a literal with the Op constants; see internal/dynamic for the
// trace and JSON wire formats.
type Mutation = dynamic.Mutation

// MutationOp enumerates the mutation operations.
type MutationOp = dynamic.Op

// The mutation operations, re-exported from internal/dynamic. The
// OpFail*/OpRecover* events are transient: they mark elements down or
// up in the fault overlay the serving tier routes around, and never
// change the permanent topology a rebuild seals (DESIGN.md §10).
const (
	OpAddNode     = dynamic.OpAddNode
	OpAddEdge     = dynamic.OpAddEdge
	OpRemoveEdge  = dynamic.OpRemoveEdge
	OpSetWeight   = dynamic.OpSetWeight
	OpFailEdge    = dynamic.OpFailEdge
	OpRecoverEdge = dynamic.OpRecoverEdge
	OpFailNode    = dynamic.OpFailNode
	OpRecoverNode = dynamic.OpRecoverNode
)

// MutAddNode returns an anchored add-node mutation: name joins the
// topology linked to anchor by one edge of weight w, atomically —
// every rebuild boundary sees it routable.
func MutAddNode(name, anchor uint64, w float64) Mutation {
	return Mutation{Op: OpAddNode, Name: name, V: anchor, W: w}
}

// MutAddEdge returns an add-edge mutation between existing nodes.
func MutAddEdge(u, v uint64, w float64) Mutation {
	return Mutation{Op: OpAddEdge, U: u, V: v, W: w}
}

// MutRemoveEdge returns a remove-edge mutation (every parallel edge
// of the pair).
func MutRemoveEdge(u, v uint64) Mutation {
	return Mutation{Op: OpRemoveEdge, U: u, V: v}
}

// MutSetWeight returns a set-weight mutation (every parallel edge of
// the pair).
func MutSetWeight(u, v uint64, w float64) Mutation {
	return Mutation{Op: OpSetWeight, U: u, V: v, W: w}
}

// MutFailEdge returns a transient link-failure event: every edge of
// the pair is down until a MutRecoverEdge (or a permanent removal).
func MutFailEdge(u, v uint64) Mutation {
	return Mutation{Op: OpFailEdge, U: u, V: v}
}

// MutRecoverEdge returns the recovery event for a failed pair.
func MutRecoverEdge(u, v uint64) Mutation {
	return Mutation{Op: OpRecoverEdge, U: u, V: v}
}

// MutFailNode returns a transient node-failure event: the node and
// every edge at it are down until a MutRecoverNode.
func MutFailNode(name uint64) Mutation {
	return Mutation{Op: OpFailNode, Name: name}
}

// MutRecoverNode returns the recovery event for a failed node.
func MutRecoverNode(name uint64) Mutation {
	return Mutation{Op: OpRecoverNode, Name: name}
}

// GenerateMutations produces a deterministic, seedable churn trace of
// k mutations valid against the network's graph: every mutation
// replays and no removal ever disconnects the topology (see
// cmd/graphgen -mutations).
func GenerateMutations(net *Network, k int, seed uint64) ([]Mutation, error) {
	return dynamic.GenerateTrace(net.g, k, seed)
}

// FaultProfile weighs the op mix of GenerateFaultMutations: the four
// permanent churn ops plus transient FailEdge/FailNode events and a
// Recover weight that brings a random outstanding fault back up.
// Weights are relative; zero disables an op.
type FaultProfile = dynamic.TraceProfile

// DefaultFaultProfile mirrors GenerateMutations' churn mix with ~30%
// transient failure/recovery events layered in.
func DefaultFaultProfile() FaultProfile { return dynamic.DefaultTraceProfile() }

// GenerateFaultMutations produces a deterministic, seedable trace of k
// mutations mixing permanent churn with transient failure/recovery
// events (cmd/graphgen -failures). Safety contract: every mutation
// replays, and the live subgraph — up nodes over up edges — stays
// connected after every event. The second result quiesces the tail:
// appending it recovers every outstanding fault, returning the overlay
// to the state a cold build of the final topology assumes.
func GenerateFaultMutations(net *Network, k int, seed uint64, p FaultProfile) (trace, recovery []Mutation, err error) {
	muts, fs, err := dynamic.GenerateFaultTrace(net.g, k, seed, p)
	if err != nil {
		return nil, nil, err
	}
	return muts, fs.RecoveryMutations(), nil
}

// WriteMutations emits a mutation trace in the text format
// cmd/graphgen -mutations writes.
func WriteMutations(w io.Writer, muts []Mutation) error { return dynamic.WriteTrace(w, muts) }

// ReadMutations parses a mutation trace in the text format.
func ReadMutations(r io.Reader) ([]Mutation, error) { return dynamic.ReadTrace(r) }

// ReplayNetwork applies a mutation trace to a network's graph and
// returns the resulting network (metric computed) — the cold topology
// a dynamic rebuild of the same mutation range converges to, byte-
// identical in structure whether the range was replayed in one shot
// or across many rebuilds.
func ReplayNetwork(net *Network, muts []Mutation) (*Network, error) {
	g, err := dynamic.Replay(net.g, muts)
	if err != nil {
		return nil, err
	}
	return WrapGraph(g), nil
}

// VersionInfo describes one sealed topology version: its lineage (the
// parent version and the half-open mutation range (MutFrom, MutTo]
// replayed on top of it) and the background build cost.
type VersionInfo struct {
	ID        uint64        `json:"id"`
	Parent    uint64        `json:"parent"`
	MutFrom   uint64        `json:"mutFrom"`
	MutTo     uint64        `json:"mutTo"`
	BuildWall time.Duration `json:"buildWallNs"`
	Kinds     []string      `json:"kinds"`
}

// DynamicOptions configures NewDynamic.
type DynamicOptions struct {
	// Configs names the scheme kinds every version builds — one
	// Config per kind, at least one, kinds distinct. Each rebuild
	// reconstructs all of them through the streaming pipeline
	// (BuildStream) over the replayed graph.
	Configs []Config
	// Workers bounds each rebuild's shortest-path fan-out; 0 means
	// GOMAXPROCS.
	Workers int
	// EnsureMetric computes the all-pairs metric of every version
	// before it swaps in, so routed results always carry true stretch
	// (Result.MetricKnown). It costs one APSP per rebuild, in the
	// background — never on the serving path, and never after the
	// swap (a metric appearing on a serving version would strand
	// stale MetricKnown=false cache entries; see internal/serve).
	EnsureMetric bool
	// SnapshotDir, when set, persists every version before it swaps
	// in: the sealed graph, each persistable kind with its lineage
	// (codec v2), and a manifest (see internal/dynamic.Store).
	SnapshotDir string
}

// Dynamic is a live topology serving one scheme set per sealed
// version: mutations accumulate in an append-only log (Apply),
// rebuilds replay them and construct fresh schemes in the background
// (Rebuild), and a hot swap publishes the result — in-flight routes
// finish on the version they started on, new requests see the new
// one, and swap hooks (OnSwap) purge serving caches within the
// sub-millisecond pause. See DESIGN.md §7.
type Dynamic struct {
	opts    DynamicOptions
	top     *dynamic.Topology
	baseNet *Network
	store   *dynamic.Store

	watchMu  sync.Mutex
	watchers map[int]chan VersionInfo
	watchSeq int
}

// dynVersion is the per-version facade state hung on the internal
// version's Aux: the shared Network and the ready-to-route wrappers.
type dynVersion struct {
	net     *Network
	schemes map[string]*Scheme
}

// NewDynamic seals net's graph as version 0, builds its schemes
// synchronously, and returns the live handle. The network's metric —
// if it has one — serves version 0's stretch reporting; later
// versions follow DynamicOptions.EnsureMetric.
func NewDynamic(net *Network, o DynamicOptions) (*Dynamic, error) {
	return NewDynamicCtx(context.Background(), net, o)
}

// NewDynamicCtx is NewDynamic honoring cancellation: the synchronous
// version-0 build aborts when ctx does, returning the wrapped context
// error instead of a handle.
func NewDynamicCtx(ctx context.Context, net *Network, o DynamicOptions) (*Dynamic, error) {
	d := &Dynamic{opts: o, baseNet: net, watchers: make(map[int]chan VersionInfo)}
	if o.SnapshotDir != "" {
		st, err := dynamic.NewStore(o.SnapshotDir)
		if err != nil {
			return nil, err
		}
		d.store = st
	}
	top, err := dynamic.NewTopology(ctx, net.g, dynamic.TopologyOptions{
		Configs: o.Configs,
		Workers: o.Workers,
		PreSwap: d.preSwap,
	})
	if err != nil {
		return nil, err
	}
	d.top = top
	// Watchers are notified from inside the swap itself (the hooks run
	// under the serialized rebuild path), so events are exactly-once
	// and arrive in version order even with concurrent Rebuild
	// callers; the sends are non-blocking and cost nanoseconds.
	top.Swapper().OnSwap(func(v *dynamic.Version) { d.notify(info(v)) })
	return d, nil
}

// notify fans a swapped version's lineage out to the watchers without
// ever blocking the swap.
func (d *Dynamic) notify(vi VersionInfo) {
	d.watchMu.Lock()
	for _, ch := range d.watchers {
		select {
		case ch <- vi:
		default: // a slow watcher drops updates, never blocks a swap
		}
	}
	d.watchMu.Unlock()
}

// preSwap readies a freshly built version for serving: the facade
// wrappers, the optional metric, and the optional snapshot — all the
// expensive work, strictly before the swap.
func (d *Dynamic) preSwap(v *dynamic.Version) error {
	net := &Network{g: v.Graph()}
	if v.ID == 0 && d.baseNet != nil {
		net = d.baseNet
	}
	if d.opts.EnsureMetric {
		net.EnsureMetric()
	}
	ds := &dynVersion{net: net, schemes: make(map[string]*Scheme, len(d.opts.Configs))}
	for _, kind := range v.Kinds() {
		s := v.Scheme(kind)
		ds.schemes[kind] = newScheme(net, kind, s, s)
	}
	if d.store != nil {
		if err := d.store.Save(v); err != nil {
			return err
		}
	}
	v.Aux = ds
	return nil
}

// info renders a version's lineage.
func info(v *dynamic.Version) VersionInfo {
	return VersionInfo{
		ID: v.ID, Parent: v.Parent, MutFrom: v.MutFrom, MutTo: v.MutTo,
		BuildWall: v.BuildWall, Kinds: v.Kinds(),
	}
}

// Apply validates and appends mutations to the log atomically (all or
// none), returning the sequence number of the last one. The served
// topology is unchanged until the next Rebuild.
func (d *Dynamic) Apply(ms ...Mutation) (uint64, error) { return d.top.Apply(ms...) }

// Pending returns how many accepted mutations the serving version has
// not yet absorbed.
func (d *Dynamic) Pending() uint64 { return d.top.Pending() }

// Version returns the serving version's lineage.
func (d *Dynamic) Version() VersionInfo { return info(d.top.Current()) }

// Rebuild seals the log, replays the pending mutations, rebuilds
// every configured kind in the background, and hot-swaps the new
// version in (purging caches via the OnSwap hooks). Rebuilds
// serialize; with nothing pending the current version is returned
// unchanged. On error the old version keeps serving and the mutation
// range stays pending.
func (d *Dynamic) Rebuild(ctx context.Context) (VersionInfo, error) {
	v, _, err := d.top.Rebuild(ctx)
	if err != nil {
		return VersionInfo{}, err
	}
	return info(v), nil
}

// Stage runs the first half of a two-phase rebuild: replay, build,
// metric, snapshot — everything expensive — without publishing the
// result. The returned version waits for SwapTo; the old version keeps
// serving. With nothing pending the serving version is returned, and
// SwapTo of its ID is a no-op. Coordinated cluster cut-overs are built
// on this split: every shard stages, the coordinator verifies the
// staged IDs agree, then all shards SwapTo the same version.
func (d *Dynamic) Stage(ctx context.Context) (VersionInfo, error) {
	v, err := d.top.Stage(ctx)
	if err != nil {
		return VersionInfo{}, err
	}
	return info(v), nil
}

// SwapTo publishes the staged version named by id — the second half of
// a two-phase rebuild. Naming the serving version is an idempotent
// no-op; naming anything else wraps ErrVersionSkew and changes
// nothing.
func (d *Dynamic) SwapTo(id uint64) (VersionInfo, error) {
	v, _, err := d.top.Commit(id)
	if err != nil {
		return VersionInfo{}, err
	}
	return info(v), nil
}

// Staged reports the staged-but-uncommitted version, if any.
func (d *Dynamic) Staged() (VersionInfo, bool) {
	v := d.top.Staged()
	if v == nil {
		return VersionInfo{}, false
	}
	return info(v), true
}

// OnSwap registers a hook run synchronously inside every swap, after
// the new version is published — the place a serving layer purges its
// result cache (serve.Pool.Purge). Hooks must be fast: they are part
// of the measured swap pause.
func (d *Dynamic) OnSwap(fn func(VersionInfo)) {
	d.top.Swapper().OnSwap(func(v *dynamic.Version) { fn(info(v)) })
}

// Watch returns a channel receiving the lineage of every version
// swapped in after the call, and a stop function releasing it. A
// watcher that falls behind misses updates (sends never block a
// swap); poll Version for the authoritative current state.
func (d *Dynamic) Watch(buf int) (<-chan VersionInfo, func()) {
	if buf < 1 {
		buf = 1
	}
	ch := make(chan VersionInfo, buf)
	d.watchMu.Lock()
	d.watchSeq++
	id := d.watchSeq
	d.watchers[id] = ch
	d.watchMu.Unlock()
	return ch, func() {
		d.watchMu.Lock()
		delete(d.watchers, id)
		d.watchMu.Unlock()
	}
}

// SwapStats reports how many swaps have been published and the last
// and largest serving pause (the pointer store plus the OnSwap
// hooks — the only serving-visible cost of a rebuild).
func (d *Dynamic) SwapStats() (swaps uint64, lastPause, maxPause time.Duration) {
	sw := d.top.Swapper()
	return sw.Swaps(), sw.LastPause(), sw.MaxPause()
}

// current resolves the serving version's facade state: one atomic
// load, after which everything — graph, engine, schemes, metric — is
// immutable, so a concurrent swap can never tear a request across two
// versions.
func (d *Dynamic) current() (*dynamic.Version, *dynVersion) {
	v := d.top.Current()
	return v, v.Aux.(*dynVersion)
}

// Scheme returns the serving version's scheme of one kind (nil if the
// kind is not configured). The returned scheme stays valid — bound to
// its version — across later swaps.
func (d *Dynamic) Scheme(kind string) *Scheme {
	_, ds := d.current()
	return ds.schemes[kind]
}

// Network returns the serving version's network.
func (d *Dynamic) Network() *Network {
	_, ds := d.current()
	return ds.net
}

// RouteByNameCtx routes one message on the serving version's scheme
// of the given kind. The version is resolved once, at admission:
// in-flight routes finish on their version when a swap lands
// mid-walk. An unconfigured kind wraps ErrUnknownKind; source-name
// and delivery semantics follow Scheme.RouteByNameCtx.
func (d *Dynamic) RouteByNameCtx(ctx context.Context, kind string, srcName, dstName uint64) (Result, error) {
	v, ds := d.current()
	s, ok := ds.schemes[kind]
	if !ok {
		return Result{}, fmt.Errorf("compactroute: dynamic version %d: %w %q", v.ID, routeerr.ErrUnknownKind, kind)
	}
	return s.RouteByNameCtx(ctx, srcName, dstName)
}

// RoutePathByNameCtx is RouteByNameCtx with the traversed path
// returned as external names (Scheme.RoutePathByNameCtx on the
// serving version) — the shape serve.Repairer wraps to hold each walk
// against the transient fault overlay.
func (d *Dynamic) RoutePathByNameCtx(ctx context.Context, kind string, srcName, dstName uint64) (Result, []uint64, error) {
	v, ds := d.current()
	s, ok := ds.schemes[kind]
	if !ok {
		return Result{}, nil, fmt.Errorf("compactroute: dynamic version %d: %w %q", v.ID, routeerr.ErrUnknownKind, kind)
	}
	return s.RoutePathByNameCtx(ctx, srcName, dstName)
}
