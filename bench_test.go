// Benchmark harness: one testing.B target per reproduced table/figure
// (T1–T10, F1–F2; see DESIGN.md §2), each executing the corresponding
// experiment at smoke size, plus micro-benchmarks of the hot paths
// (shortest paths, scheme construction, per-message routing).
//
// Regenerate the full-size tables with: go run ./cmd/routebench -all
package compactroute_test

import (
	"io"
	"sync"
	"testing"

	"compactroute"
	"compactroute/internal/bench"
	"compactroute/internal/gen"
	"compactroute/internal/graph"
	"compactroute/internal/sssp"
)

func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := bench.Experiments[id](b.Context(), io.Discard, bench.Config{Quick: true, Seed: 1}); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

// One bench target per table/figure of the reproduction.

func BenchmarkT1SpaceStretch(b *testing.B)      { runExperiment(b, "T1") }
func BenchmarkT2ScaleFree(b *testing.B)         { runExperiment(b, "T2") }
func BenchmarkT3StretchComparison(b *testing.B) { runExperiment(b, "T3") }
func BenchmarkF1DenseProperty(b *testing.B)     { runExperiment(b, "F1") }
func BenchmarkF2SparseProperty(b *testing.B)    { runExperiment(b, "F2") }
func BenchmarkT4NITree(b *testing.B)            { runExperiment(b, "T4") }
func BenchmarkT5Cover(b *testing.B)             { runExperiment(b, "T5") }
func BenchmarkT6CoverRoute(b *testing.B)        { runExperiment(b, "T6") }
func BenchmarkT7LandmarkClaims(b *testing.B)    { runExperiment(b, "T7") }
func BenchmarkT8SchemeTable(b *testing.B)       { runExperiment(b, "T8") }
func BenchmarkT9Ablation(b *testing.B)          { runExperiment(b, "T9") }
func BenchmarkT10PhaseCosts(b *testing.B)       { runExperiment(b, "T10") }
func BenchmarkP1ParallelMeasure(b *testing.B)   { runExperiment(b, "P1") }

// --- micro-benchmarks ---

func BenchmarkDijkstra1024(b *testing.B) {
	g := gen.Gnp(1, 1024, 8.0/1024, gen.Uniform(1, 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sssp.From(g, graph.NodeID(i%g.N()))
	}
}

func BenchmarkAPSP256(b *testing.B) {
	g := gen.Gnp(2, 256, 8.0/256, gen.Uniform(1, 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sssp.AllPairs(g)
	}
}

func BenchmarkSchemeBuildK3N256(b *testing.B) {
	net := compactroute.RandomNetwork(3, 256, 8.0/256, compactroute.UniformWeights(1, 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := compactroute.NewScheme(net, compactroute.Options{K: 3, Seed: uint64(i), SFactor: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// routeBench holds prebuilt schemes shared by the routing throughput
// benchmarks (construction excluded from timing).
var routeBench struct {
	once sync.Once
	net  *compactroute.Network
	agm  *compactroute.Scheme
	full *compactroute.Scheme
	tz   *compactroute.Scheme
}

func routeSetup(b *testing.B) {
	b.Helper()
	routeBench.once.Do(func() {
		routeBench.net = compactroute.RandomNetwork(4, 256, 8.0/256, compactroute.UniformWeights(1, 8))
		var err error
		if routeBench.agm, err = compactroute.NewScheme(routeBench.net, compactroute.Options{K: 3, Seed: 7, SFactor: 1}); err != nil {
			panic(err)
		}
		if routeBench.full, err = compactroute.NewFullTable(routeBench.net); err != nil {
			panic(err)
		}
		if routeBench.tz, err = compactroute.NewTZ(routeBench.net, 3, 7); err != nil {
			panic(err)
		}
	})
}

func benchRoutes(b *testing.B, s *compactroute.Scheme) {
	b.Helper()
	n := routeBench.net.N()
	totalStretch, delivered := 0.0, 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := compactroute.NodeID(i % n)
		dst := compactroute.NodeID((i*131 + 17) % n)
		if src == dst {
			continue
		}
		res, err := s.Route(src, dst)
		if err != nil || !res.Delivered {
			b.Fatalf("route failed: %v", err)
		}
		totalStretch += res.Stretch()
		delivered++
	}
	if delivered > 0 {
		b.ReportMetric(totalStretch/float64(delivered), "stretch/route")
	}
}

func BenchmarkRouteAGM06(b *testing.B) {
	routeSetup(b)
	benchRoutes(b, routeBench.agm)
}

func BenchmarkRouteFullTable(b *testing.B) {
	routeSetup(b)
	benchRoutes(b, routeBench.full)
}

func BenchmarkRouteTZ(b *testing.B) {
	routeSetup(b)
	benchRoutes(b, routeBench.tz)
}
