// Trade-off demo (Theorem 1): sweeping k trades routing-table bits
// against stretch — tables shrink like Õ(n^{1/k}) while the worst-case
// stretch grows linearly in k.
package main

import (
	"fmt"
	"log"

	"compactroute"
)

func main() {
	net := compactroute.RandomNetwork(3, 256, 8.0/256, compactroute.UniformWeights(1, 8))
	full, err := compactroute.Build(net, compactroute.Config{Kind: "fulltable"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("random network: n=%d\n", net.N())
	fmt.Printf("%-10s  %-15s  %-13s  %-12s\n", "scheme", "max bits/node", "mean stretch", "max stretch")
	st, err := full.MeasureStretch(4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-10s  %-15d  %-13.3f  %-12.3f\n", "full", full.MaxTableBits(), st.Mean(), st.Max())

	for _, k := range []int{2, 3, 4, 5} {
		s, err := compactroute.Build(net, compactroute.Config{Kind: "paper", K: k, Seed: 9, SFactor: 1})
		if err != nil {
			log.Fatal(err)
		}
		st, err := s.MeasureStretch(4)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("k=%-8d  %-15d  %-13.3f  %-12.3f\n", k, s.MaxTableBits(), st.Mean(), st.Max())
	}
	fmt.Println("\ntables shrink with k, stretch grows ~linearly: the space-stretch trade-off.")
}
