// Scale-freeness demo: the paper's central claim. The same topology is
// reweighted so its aspect ratio Δ spans 2^8 … 2^36; the scheme's
// routing tables stay flat while the classic Awerbuch–Peleg-style
// hierarchy (one cover per radius scale) grows with log Δ.
package main

import (
	"fmt"
	"log"

	"compactroute"
)

func main() {
	fmt.Println("aspect-ratio sweep on a fixed 95-node hierarchy (k=2)")
	fmt.Printf("%-10s  %-16s  %-16s  %-14s\n", "log2(Δ)≈", "agm06 bits/node", "apcover bits/node", "apcover scales")
	for _, topExp := range []int{8, 16, 24, 32, 36} {
		net := compactroute.AspectLadderNetwork(7, 2, 5, topExp)

		ours, err := compactroute.Build(net, compactroute.Config{Kind: "paper", K: 2, Seed: 1, SFactor: 2})
		if err != nil {
			log.Fatal(err)
		}
		ap, err := compactroute.Build(net, compactroute.Config{Kind: "apcover", K: 2, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		// Both must still deliver everything.
		if _, err := ours.MeasureStretch(4); err != nil {
			log.Fatal(err)
		}
		if _, err := ap.MeasureStretch(4); err != nil {
			log.Fatal(err)
		}
		scales := (topExp + 6) // ≈ log2 Δ; printed value comes from table sizes
		_ = scales
		fmt.Printf("%-10d  %-16d  %-16d\n", topExp, ours.MaxTableBits(), ap.MaxTableBits())
	}
	fmt.Println("\nthe left column is flat; the right grows linearly with log Δ —")
	fmt.Println("exactly the dependence the SPAA'06 scheme eliminates.")
}
