// Quickstart: build a small weighted network with arbitrary node
// names, construct the paper's routing scheme, and route a message.
package main

import (
	"fmt"
	"log"

	"compactroute"
)

func main() {
	// A network of six datacenters with arbitrary 64-bit names (they
	// could be IP addresses, hashes, or serial numbers — the scheme
	// never interprets them).
	b := compactroute.NewBuilder()
	paris := b.AddNode(0x50A1)
	london := b.AddNode(0x10AD)
	berlin := b.AddNode(0xBE21)
	madrid := b.AddNode(0x3AD2)
	rome := b.AddNode(0x203E)
	oslo := b.AddNode(0x0510)

	type link struct {
		a, b compactroute.NodeID
		ms   float64
	}
	for _, l := range []link{
		{paris, london, 8}, {paris, berlin, 11}, {paris, madrid, 13},
		{london, oslo, 14}, {berlin, oslo, 11}, {berlin, rome, 15},
		{madrid, rome, 17}, {rome, paris, 14},
	} {
		if err := b.AddEdge(l.a, l.b, l.ms); err != nil {
			log.Fatal(err)
		}
	}

	net, err := compactroute.BuildNetwork(b)
	if err != nil {
		log.Fatal(err)
	}

	// Every scheme in the repository is built by registry kind — this
	// is the paper's; compactroute.Kinds() lists the alternatives.
	// K controls the trade-off: stretch O(k), tables Õ(n^{1/k}).
	scheme, err := compactroute.Build(net, compactroute.Config{Kind: "paper", K: 2, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built kind %q (registry: %v)\n", scheme.Kind(), compactroute.Kinds())

	// Route by name — the only address the sender needs.
	res, err := scheme.RouteByName(0x3AD2, 0x0510) // Madrid → Oslo
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Madrid→Oslo: delivered=%v cost=%.0fms hops=%d stretch=%.2f\n",
		res.Delivered, res.Cost, res.Hops, res.Stretch())
	fmt.Printf("largest routing table: %d bits\n", scheme.MaxTableBits())

	// The stretch guarantee holds for every pair.
	st, err := scheme.MeasureStretch(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("all-pairs stretch: %s\n", st)
}
