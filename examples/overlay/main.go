// Overlay demo: the paper's motivating application (§1). Distributed
// hash tables assign nodes *fixed* identifiers (hashes) that cannot
// encode network location, so labeled routing schemes do not apply —
// name-independent routing is exactly what a DHT substrate needs.
//
// This example builds a 300-node overlay whose node names are content
// hashes, stores a few keys on their responsible nodes (closest hash),
// and serves lookups by routing directly to the responsible node's
// name with the SPAA'06 scheme.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"time"

	"compactroute"
)

func main() {
	const n = 300
	net := compactroute.ScaleFreeNetwork(11, n, 2, compactroute.UniformWeights(1, 10))
	scheme, err := compactroute.Build(net, compactroute.Config{Kind: "paper", K: 3, Seed: 5, SFactor: 1})
	if err != nil {
		log.Fatal(err)
	}

	// The DHT id space is the node-name space itself.
	names := make([]uint64, n)
	for i := 0; i < n; i++ {
		names[i] = net.Graph().Name(compactroute.NodeID(i))
	}
	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })

	// responsible returns the node owning a key: the first name ≥ key
	// (wrapping), as in consistent hashing.
	responsible := func(key uint64) uint64 {
		i := sort.Search(n, func(i int) bool { return names[i] >= key })
		if i == n {
			i = 0
		}
		return names[i]
	}

	keys := []string{"alpha.iso", "beta.tar.gz", "gamma.db", "delta.log", "epsilon.bin"}
	fmt.Printf("DHT over %d nodes, k=3 (tables: max %d bits/node)\n\n", n, scheme.MaxTableBits())
	fmt.Printf("%-14s  %-18s  %-18s  %-6s  %-8s\n", "key", "key hash", "owner", "hops", "stretch")

	totalStretch, served := 0.0, 0
	for qi, key := range keys {
		keyHash := compactroute.HashName(99, uint64(len(key))<<32|uint64(qi))
		owner := responsible(keyHash)
		// A random client looks the key up by routing to the owner's
		// name — no location information needed, only the hash. Serving
		// paths route with a deadline so a slow lookup cannot hold a
		// caller hostage (RouteByNameCtx wraps context.DeadlineExceeded
		// on expiry).
		client := names[(qi*37)%n]
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		res, err := scheme.RouteByNameCtx(ctx, client, owner)
		cancel()
		if err != nil {
			log.Fatal(err)
		}
		if !res.Delivered {
			log.Fatalf("lookup for %s not delivered", key)
		}
		fmt.Printf("%-14s  %#-18x  %#-18x  %-6d  %-8.2f\n",
			key, keyHash, owner, res.Hops, res.Stretch())
		totalStretch += res.Stretch()
		served++
	}
	fmt.Printf("\nmean lookup stretch: %.2f — bounded by O(k) for every key, any topology.\n",
		totalStretch/float64(served))
}
