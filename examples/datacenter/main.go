// Datacenter demo: string-labeled hosts, persistent topology, and
// route visualization — the operational surface of the library.
//
// A three-tier leaf/spine fabric is built with human-readable host
// labels (hashed to routing names per §2.1's long-label remark), the
// routing scheme is constructed, some flows are routed by label, and
// the topology is saved to the workload format that cmd/routesim can
// replay.
package main

import (
	"bytes"
	"fmt"
	"log"

	"compactroute"
)

func main() {
	b := compactroute.NewBuilder()

	// Spine layer.
	spines := make([]compactroute.NodeID, 4)
	for i := range spines {
		spines[i] = compactroute.AddLabeled(b, fmt.Sprintf("spine-%d", i))
	}
	// Leaf layer: every leaf connects to every spine (folded Clos).
	leaves := make([]compactroute.NodeID, 8)
	for i := range leaves {
		leaves[i] = compactroute.AddLabeled(b, fmt.Sprintf("leaf-%d", i))
		for s, sp := range spines {
			// Link latencies vary slightly per (leaf, spine) pair.
			w := 1.0 + 0.1*float64((i+s)%3)
			if err := b.AddEdge(leaves[i], sp, w); err != nil {
				log.Fatal(err)
			}
		}
	}
	// Hosts: four per leaf.
	for i := range leaves {
		for h := 0; h < 4; h++ {
			host := compactroute.AddLabeled(b, fmt.Sprintf("host-%d-%d", i, h))
			if err := b.AddEdge(host, leaves[i], 0.5); err != nil {
				log.Fatal(err)
			}
		}
	}

	net, err := compactroute.BuildNetwork(b)
	if err != nil {
		log.Fatal(err)
	}
	scheme, err := compactroute.Build(net, compactroute.Config{Kind: "paper", K: 2, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fabric: %d nodes, max table %d bits/node\n\n", net.N(), scheme.MaxTableBits())

	flows := [][2]string{
		{"host-0-0", "host-7-3"}, // cross-fabric
		{"host-2-1", "host-2-2"}, // same leaf
		{"host-4-0", "spine-1"},  // host to spine
	}
	for _, f := range flows {
		res, err := scheme.RouteByLabel(f[0], f[1])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s → %-10s  cost=%.1f  hops=%d  stretch=%.2f\n",
			f[0], f[1], res.Cost, res.Hops, res.Stretch())
	}

	// Persist the topology for replay with cmd/routesim -graph.
	var buf bytes.Buffer
	if err := compactroute.SaveNetwork(&buf, net); err != nil {
		log.Fatal(err)
	}
	reloaded, err := compactroute.LoadNetwork(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntopology round-trips through the workload format: %d nodes, %v\n",
		reloaded.N(), reloaded.N() == net.N())

	// Persist the built scheme itself (the kind-tagged codec format
	// cmd/routed serves): loading skips APSP and construction, which
	// is the entire build-once/route-many economics.
	var sbuf bytes.Buffer
	if err := compactroute.Save(&sbuf, scheme); err != nil {
		log.Fatal(err)
	}
	served, err := compactroute.Load(&sbuf)
	if err != nil {
		log.Fatal(err)
	}
	res, err := served.RouteByLabel("host-0-0", "host-7-3")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scheme round-trips through the codec as kind %q: delivered=%v cost=%.1f\n",
		served.Kind(), res.Delivered, res.Cost)
}
