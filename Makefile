# Local targets mirror .github/workflows/ci.yml step for step, so a
# green `make ci` means a green pipeline.

GO ?= go

.PHONY: build test race lint bench smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race tests run the -short suite: the 2k-node persistence acceptance
# test is exercised (unraced) by `make test`, and racing it would
# dominate the pipeline for no extra interleaving coverage.
race:
	$(GO) test -race -short ./...

lint:
	@fmt_out=$$(gofmt -l .); \
	if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; \
	fi
	$(GO) vet ./...

# Smoke-compile and single-shot every benchmark so perf code paths
# cannot rot unnoticed.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# End-to-end serving smoke: scheme build -> routed -> loadgen replay
# of three workload patterns -> graceful SIGTERM drain.
smoke:
	sh scripts/smoke_serving.sh

ci: build lint test race bench smoke
