# Local targets mirror .github/workflows/ci.yml step for step, so a
# green `make ci` means a green pipeline.

GO ?= go

.PHONY: build test race lint fmtcheck vet crlint lint-api lint-budget staticcheck docs vuln bench benchjson fuzz smoke ci

build:
	$(GO) build ./...

# -shuffle=on randomizes test order every run, so inter-test state
# dependencies cannot hide (the seed is printed for reproduction).
test:
	$(GO) test -shuffle=on ./...

# Race tests run the -short suite: the 2k-node persistence acceptance
# test is exercised (unraced) by `make test`, and racing it would
# dominate the pipeline for no extra interleaving coverage.
race:
	$(GO) test -race -short ./...

# lint is the umbrella; each sub-check is its own target so nothing
# runs twice when both `make lint` and a single check are invoked.
lint: fmtcheck vet crlint

fmtcheck:
	@fmt_out=$$(gofmt -l . examples cmd internal); \
	if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# The repository's own analyzer suite (internal/analysis, DESIGN.md
# §9), ten analyzers: map-order determinism, ctx-first flow, error
# taxonomy, seeded randomness, detached-context deadlines, lock
# discipline, goroutine lifecycles, hot-path escape budgets, the
# locked public API surface, and the locked metric-name set. Escape hatches are lint/crlint.suppress
# and inline //crlint:ignore directives; both need a reason and go
# stale loudly.
crlint:
	$(GO) run ./cmd/crlint ./...

# Regenerate the tracked lint sidecars after an *intentional* change
# to a hot path's allocations or to the public API surface.
lint-budget:
	$(GO) run ./cmd/crlint -write-budget ./...

lint-api:
	$(GO) run ./cmd/crlint -write-api ./...

# Staticcheck, pinned so every run means the same thing. Like vuln it
# downloads the tool, so it is not in the local ci chain; the pipeline
# runs it as its own step. Config in staticcheck.conf.
STATICCHECK_VERSION ?= v0.6.1
staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

# Docs gate: every package carries its doc comment, the README front
# door exists and links the deep docs, and go vet is clean. The ci
# chain sets CHECK_DOCS_NO_VET=1 because lint already ran vet.
docs:
	sh scripts/check_docs.sh

# Known-vulnerability scan (network access required on first run).
vuln:
	$(GO) run golang.org/x/vuln/cmd/govulncheck@latest ./...

# Smoke-compile and single-shot every benchmark so perf code paths
# cannot rot unnoticed.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# Machine-readable experiment results (JSON Lines), the BENCH_*.json
# perf-trajectory format. Written to the file first (a pipe through
# tee would mask a routebench failure behind tee's exit status), then
# shown and checked non-empty.
benchjson:
	$(GO) run ./cmd/routebench -exp P1 -quick -json > BENCH_P1.json
	@cat BENCH_P1.json
	@test -s BENCH_P1.json || { echo "benchjson: empty BENCH_P1.json" >&2; exit 1; }
	$(GO) run ./cmd/routebench -bench b1 -n 512 -json > BENCH_B1.json
	@cat BENCH_B1.json
	@test -s BENCH_B1.json || { echo "benchjson: empty BENCH_B1.json" >&2; exit 1; }
	$(GO) run ./cmd/routebench -exp D1 -quick -json > BENCH_D1.json
	@cat BENCH_D1.json
	@test -s BENCH_D1.json || { echo "benchjson: empty BENCH_D1.json" >&2; exit 1; }
	$(GO) run ./cmd/routebench -exp D2 -quick -json > BENCH_D2.json
	@cat BENCH_D2.json
	@test -s BENCH_D2.json || { echo "benchjson: empty BENCH_D2.json" >&2; exit 1; }
	$(GO) run ./cmd/routebench -exp S1 -quick -json > BENCH_S1.json
	@cat BENCH_S1.json
	@test -s BENCH_S1.json || { echo "benchjson: empty BENCH_S1.json" >&2; exit 1; }
	$(GO) run ./cmd/routebench -exp O1 -quick -json > BENCH_O1.json
	@cat BENCH_O1.json
	@test -s BENCH_O1.json || { echo "benchjson: empty BENCH_O1.json" >&2; exit 1; }

# Fuzz smoke: each native fuzz target runs a short randomized burst
# beyond its seed corpus. -fuzzminimizetime is capped because the
# default (60s per interesting input) can eat the whole budget on a
# single slow worker before any real exploration happens.
fuzz:
	$(GO) test -run FuzzDecodePayload -fuzz FuzzDecodePayload -fuzztime 10s -fuzzminimizetime 20x ./internal/codec
	$(GO) test -run FuzzReadTrace -fuzz FuzzReadTrace -fuzztime 10s -fuzzminimizetime 20x ./internal/dynamic

# End-to-end serving smoke: scheme build -> routed -> loadgen replay
# of three workload patterns -> graceful SIGTERM drain.
smoke:
	sh scripts/smoke_serving.sh

# vuln and staticcheck are not in the local ci chain: both download
# their tool, so they need network access. The pipeline runs each as
# its own step.
ci: build lint test race bench benchjson fuzz smoke
ci: export CHECK_DOCS_NO_VET = 1
ci: docs
