# Local targets mirror .github/workflows/ci.yml step for step, so a
# green `make ci` means a green pipeline.

GO ?= go

.PHONY: build test race lint docs vuln bench benchjson smoke ci

build:
	$(GO) build ./...

# -shuffle=on randomizes test order every run, so inter-test state
# dependencies cannot hide (the seed is printed for reproduction).
test:
	$(GO) test -shuffle=on ./...

# Race tests run the -short suite: the 2k-node persistence acceptance
# test is exercised (unraced) by `make test`, and racing it would
# dominate the pipeline for no extra interleaving coverage.
race:
	$(GO) test -race -short ./...

lint:
	@fmt_out=$$(gofmt -l . examples cmd internal); \
	if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; \
	fi
	$(GO) vet ./...

# Docs gate: every package carries its doc comment, the README front
# door exists and links the deep docs, and go vet is clean. The ci
# chain sets CHECK_DOCS_NO_VET=1 because lint already ran vet.
docs:
	sh scripts/check_docs.sh

# Known-vulnerability scan (network access required on first run).
vuln:
	$(GO) run golang.org/x/vuln/cmd/govulncheck@latest ./...

# Smoke-compile and single-shot every benchmark so perf code paths
# cannot rot unnoticed.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# Machine-readable experiment results (JSON Lines), the BENCH_*.json
# perf-trajectory format. Written to the file first (a pipe through
# tee would mask a routebench failure behind tee's exit status), then
# shown and checked non-empty.
benchjson:
	$(GO) run ./cmd/routebench -exp P1 -quick -json > BENCH_P1.json
	@cat BENCH_P1.json
	@test -s BENCH_P1.json || { echo "benchjson: empty BENCH_P1.json" >&2; exit 1; }
	$(GO) run ./cmd/routebench -bench b1 -n 512 -json > BENCH_B1.json
	@cat BENCH_B1.json
	@test -s BENCH_B1.json || { echo "benchjson: empty BENCH_B1.json" >&2; exit 1; }
	$(GO) run ./cmd/routebench -exp D1 -quick -json > BENCH_D1.json
	@cat BENCH_D1.json
	@test -s BENCH_D1.json || { echo "benchjson: empty BENCH_D1.json" >&2; exit 1; }
	$(GO) run ./cmd/routebench -exp S1 -quick -json > BENCH_S1.json
	@cat BENCH_S1.json
	@test -s BENCH_S1.json || { echo "benchjson: empty BENCH_S1.json" >&2; exit 1; }

# End-to-end serving smoke: scheme build -> routed -> loadgen replay
# of three workload patterns -> graceful SIGTERM drain.
smoke:
	sh scripts/smoke_serving.sh

# vuln is not in the local ci chain: it downloads the vulnerability
# database and the govulncheck tool, so it needs network access. The
# pipeline runs it as its own step.
ci: build lint test race bench benchjson smoke
ci: export CHECK_DOCS_NO_VET = 1
ci: docs
