module compactroute

go 1.24
