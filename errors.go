package compactroute

import "compactroute/internal/routeerr"

// The typed error taxonomy of the v2 API. Every error the facade (and
// the layers under it) returns wraps one of these sentinels, so
// callers classify outcomes with errors.Is instead of matching error
// text:
//
//	res, err := scheme.RouteByNameCtx(ctx, src, dst)
//	switch {
//	case errors.Is(err, compactroute.ErrUnknownName):
//	    // 422: the caller asked about a node that does not exist
//	case errors.Is(err, compactroute.ErrSaturated),
//	    errors.Is(err, context.Canceled):
//	    // 503: back-pressure or a caller that left; retryable
//	}
//
// cmd/routed's status-code mapping is built exactly this way.
var (
	// ErrUnknownName: a routing query's source name is not in the
	// network. (An unknown destination is not an error — the scheme
	// searches and reports Delivered == false.)
	ErrUnknownName = routeerr.ErrUnknownName
	// ErrUnknownLabel: a label-routing query for an unregistered label.
	ErrUnknownLabel = routeerr.ErrUnknownLabel
	// ErrNotDelivered: a route terminated without reaching its
	// destination, on a path where delivery is mandatory
	// (MeasureStretch, RouteBatch).
	ErrNotDelivered = routeerr.ErrNotDelivered
	// ErrNoMetric: an operation needed the shortest-path metric on a
	// network that has none (Load starts without one; EnsureMetric
	// computes it).
	ErrNoMetric = routeerr.ErrNoMetric
	// ErrSaturated: the serving layer could not admit the query before
	// its context expired. Retryable.
	ErrSaturated = routeerr.ErrSaturated
	// ErrNotPersistable: Save was asked for a scheme kind with no
	// persistent form.
	ErrNotPersistable = routeerr.ErrNotPersistable
	// ErrUnknownKind: Build named a scheme kind absent from the
	// registry (see Kinds).
	ErrUnknownKind = routeerr.ErrUnknownKind
	// ErrVersionSkew: a coordinated swap step named a topology version
	// that is neither staged nor serving (Dynamic.SwapTo), or a cluster
	// answer straddled two shards serving different versions. Conflict
	// semantics: HTTP layers answer 409.
	ErrVersionSkew = routeerr.ErrVersionSkew
	// ErrUnreachable: the transient fault overlay blocks every
	// candidate path for the query (failed links or nodes injected by
	// the failure events; see GenerateFaultMutations). Distinct from
	// ErrNotDelivered (scheme failure on healthy topology) and
	// retryable once the outage recovers or the next rebuild absorbs
	// the loss. Bad-gateway semantics: HTTP layers answer 502.
	ErrUnreachable = routeerr.ErrUnreachable
)
