package compactroute

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"compactroute/internal/bitsize"
	"compactroute/internal/graph"
	"compactroute/internal/sim"
)

// TestKindsListsAllBuiltins pins the v2 acceptance criterion: the
// registry lists all five schemes, every one builds by name, routes,
// and reports storage.
func TestKindsListsAllBuiltins(t *testing.T) {
	want := []string{"apcover", "fulltable", "landmark", "paper", "tz"}
	got := Kinds()
	for _, w := range want {
		found := false
		for _, g := range got {
			if g == w {
				found = true
			}
		}
		if !found {
			t.Fatalf("Kinds() = %v, missing %q", got, w)
		}
	}

	net := RandomNetwork(1, 40, 0.1, UniformWeights(1, 4))
	g := net.Graph()
	for _, kind := range want {
		info, ok := LookupKind(kind)
		if !ok || info.Kind != kind || info.Description == "" {
			t.Fatalf("LookupKind(%q) = %+v, %v", kind, info, ok)
		}
		s, err := Build(net, Config{Kind: kind, K: 2, Seed: 3})
		if err != nil {
			t.Fatalf("Build(%q): %v", kind, err)
		}
		if s.Kind() != kind {
			t.Fatalf("Build(%q).Kind() = %q", kind, s.Kind())
		}
		res, err := s.RouteByName(g.Name(0), g.Name(NodeID(net.N()-1)))
		if err != nil || !res.Delivered {
			t.Fatalf("kind %s route: %+v, %v", kind, res, err)
		}
		if s.MaxTableBits() <= 0 {
			t.Fatalf("kind %s: no table bits", kind)
		}
	}
}

func TestBuildUnknownKind(t *testing.T) {
	net := RingNetwork(2, 8, UnitWeights())
	_, err := Build(net, Config{Kind: "no-such-scheme", K: 2})
	if !errors.Is(err, ErrUnknownKind) {
		t.Fatalf("err = %v, want ErrUnknownKind", err)
	}
}

// failingRouter is a scheme that always gives up: the vehicle for the
// custom-registration and ErrNotDelivered tests.
type failingRouter struct{}

type failingHeader struct{}

func (failingHeader) Bits() bitsize.Bits { return 1 }

func (failingRouter) Name() string { return "always-fails" }
func (failingRouter) Begin(src graph.NodeID, dstName uint64) (sim.Header, error) {
	return failingHeader{}, nil
}
func (failingRouter) Step(x graph.NodeID, h sim.Header) (sim.Action, int, error) {
	return sim.Failed, 0, nil
}
func (failingRouter) MaxTableBits() bitsize.Bits { return 1 }
func (failingRouter) MeanTableBits() float64     { return 1 }

// TestRegisterCustomKind: an externally registered kind is buildable
// by name like the built-ins, and Save refuses it with the typed
// sentinel (registered kinds have no codec support).
func TestRegisterCustomKind(t *testing.T) {
	const kind = "test-always-fails"
	if _, dup := LookupKind(kind); !dup {
		Register(kind, func(net *Network, cfg Config) (*Scheme, error) {
			r := failingRouter{}
			return newScheme(net, cfg.Kind, r, r), nil
		})
	}
	net := RingNetwork(7, 10, UnitWeights())
	s, err := Build(net, Config{Kind: kind})
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind() != kind || s.Name() != "always-fails" {
		t.Fatalf("custom kind built %q/%q", s.Kind(), s.Name())
	}
	res, err := s.Route(0, 5)
	if err != nil || res.Delivered {
		t.Fatalf("failing router delivered: %+v, %v", res, err)
	}
	if err := Save(&discardWriter{}, s); !errors.Is(err, ErrNotPersistable) {
		t.Fatalf("Save(custom kind) err = %v, want ErrNotPersistable", err)
	}
	// A mandatory-delivery path reports the typed non-delivery error.
	if _, err := s.MeasureStretch(1); !errors.Is(err, ErrNotDelivered) {
		t.Fatalf("MeasureStretch err = %v, want ErrNotDelivered", err)
	}
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }

// TestRouteCtxCanceled pins the acceptance criterion: a context
// canceled mid-RouteCtx returns promptly with a wrapped
// context.Canceled.
func TestRouteCtxCanceled(t *testing.T) {
	net := RingNetwork(3, 64, UnitWeights())
	s, err := Build(net, Config{Kind: KindPaper, K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before the first hop: the walk must not start
	t0 := time.Now()
	_, err = s.RouteCtx(ctx, 0, 32)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
	if d := time.Since(t0); d > time.Second {
		t.Fatalf("cancellation took %v", d)
	}
	if _, err := s.RouteByNameCtx(ctx, net.Graph().Name(0), net.Graph().Name(32)); !errors.Is(err, context.Canceled) {
		t.Fatalf("RouteByNameCtx err = %v, want wrapped context.Canceled", err)
	}
	// A deadline that expires mid-walk surfaces as DeadlineExceeded.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if _, err := s.RouteCtx(dctx, 0, 32); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline err = %v, want wrapped context.DeadlineExceeded", err)
	}
	// The background context stays free of either sentinel.
	if res, err := s.RouteCtx(context.Background(), 0, 32); err != nil || !res.Delivered {
		t.Fatalf("background route: %+v, %v", res, err)
	}
}

func TestTypedRoutingErrors(t *testing.T) {
	net := RingNetwork(5, 12, UnitWeights())
	s, err := Build(net, Config{Kind: KindPaper, K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RouteByName(0xBAD0, net.Graph().Name(0)); !errors.Is(err, ErrUnknownName) {
		t.Fatalf("unknown source err = %v, want ErrUnknownName", err)
	}
	if _, err := s.RouteByLabel("ghost", "ghost"); !errors.Is(err, ErrUnknownLabel) {
		t.Fatalf("unknown label err = %v, want ErrUnknownLabel", err)
	}
	// TZ is labeled: an unknown *destination* name has no label and is
	// the caller's error.
	z, err := Build(net, Config{Kind: KindTZ, K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := z.RouteByName(net.Graph().Name(0), 0xBAD0); !errors.Is(err, ErrUnknownName) {
		t.Fatalf("tz unknown destination err = %v, want ErrUnknownName", err)
	}
}

// TestMetricKnown pins the "unknown is not optimal" satellite: results
// say explicitly whether ShortestCost is real, across the whole
// build→save→load→EnsureMetric lifecycle.
func TestMetricKnown(t *testing.T) {
	net := RandomNetwork(8, 60, 0.09, UniformWeights(1, 5))
	g := net.Graph()
	s, err := Build(net, Config{Kind: KindPaper, K: 2, Seed: 2, SFactor: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RouteByName(g.Name(0), g.Name(NodeID(net.N()-1)))
	if err != nil || !res.MetricKnown || res.ShortestCost <= 0 {
		t.Fatalf("built scheme should know its metric: %+v, %v", res, err)
	}
	if res.Stretch() < 1 {
		t.Fatalf("stretch %v < 1", res.Stretch())
	}

	var buf bytes.Buffer
	if err := Save(&buf, s); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	lres, err := loaded.RouteByName(g.Name(0), g.Name(NodeID(net.N()-1)))
	if err != nil {
		t.Fatal(err)
	}
	if lres.MetricKnown || lres.ShortestCost != 0 {
		t.Fatalf("loaded scheme claims a metric it does not have: %+v", lres)
	}
	if lres.Stretch() != 1 {
		t.Fatalf("unknown stretch sentinel = %v, want 1", lres.Stretch())
	}
	if _, err := loaded.Network().TryDistance(0, 1); !errors.Is(err, ErrNoMetric) {
		t.Fatalf("TryDistance err = %v, want ErrNoMetric", err)
	}

	loaded.Network().EnsureMetric()
	mres, err := loaded.RouteByName(g.Name(0), g.Name(NodeID(net.N()-1)))
	if err != nil || !mres.MetricKnown {
		t.Fatalf("EnsureMetric did not surface the metric: %+v, %v", mres, err)
	}
	if mres.ShortestCost != res.ShortestCost {
		t.Fatalf("metric diverges after round-trip: %v vs %v", mres.ShortestCost, res.ShortestCost)
	}
	// An unknown destination keeps MetricKnown false even with a
	// metric: there is no d(u,v) to report.
	ures, err := loaded.RouteByName(g.Name(0), 0xBAD0)
	if err != nil || ures.Delivered || ures.MetricKnown {
		t.Fatalf("phantom destination: %+v, %v", ures, err)
	}
}
