#!/bin/sh
# End-to-end serving smoke: build a scheme, serve it with routed, and
# replay three workload patterns against it over HTTP with loadgen —
# then ask for a graceful shutdown and require a clean exit. Mirrors
# the CI "serving smoke" step; run locally with `make smoke`.
set -eu

tmp=$(mktemp -d)
pid=""
cleanup() {
	# set -e is live inside traps: keep every command failure-proof so
	# the rm always runs.
	if [ -n "$pid" ]; then kill -9 "$pid" 2>/dev/null || true; fi
	rm -rf "$tmp"
}
trap cleanup EXIT

addr=127.0.0.1:18347
go build -o "$tmp/routesim" ./cmd/routesim
go build -o "$tmp/routed" ./cmd/routed
go build -o "$tmp/loadgen" ./cmd/loadgen

"$tmp/routesim" -n 160 -k 2 -sfactor 0.5 -save "$tmp/net.crsc" >/dev/null

"$tmp/routed" -scheme "$tmp/net.crsc" -addr "$addr" &
pid=$!

ok=""
for _ in $(seq 1 100); do
	if curl -sf "http://$addr/healthz" >/dev/null 2>&1; then
		ok=1
		break
	fi
	sleep 0.1
done
[ -n "$ok" ] || { echo "smoke: routed never became healthy" >&2; exit 1; }

"$tmp/loadgen" -scheme "$tmp/net.crsc" -url "http://$addr" \
	-pattern uniform,zipf,local -queries 3000 -concurrency 8 -hist 6

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM "$pid"
wait "$pid"
status=$?
pid=""
[ "$status" -eq 0 ] || { echo "smoke: routed exited $status on SIGTERM" >&2; exit 1; }
echo "smoke: serving path OK (build -> serve -> replay -> drain)"
