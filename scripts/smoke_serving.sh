#!/bin/sh
# End-to-end serving smoke, four passes:
#
#  1. The persisted-file flow: build a scheme with routesim -save,
#     serve the file with routed, replay three workload patterns over
#     HTTP with loadgen, then ask for a graceful shutdown and require
#     a clean exit.
#  2. The registry flow: for EVERY scheme kind the registry lists,
#     `routed -scheme <kind>` over a shared topology file must come up
#     healthy, identify its kind on /healthz, and deliver a route.
#  3. The dynamic churn flow: graphgen emits a topology plus a
#     mutation trace, routed serves the kind dynamically, and loadgen
#     interleaves mutations and rebuilds with the replay; the daemon
#     must end past version 0 with nothing pending and zero failures.
#  4. The cluster flow: two routed shards behind a routefront
#     front-door, the same churn replay pointed at the front-door;
#     every mutation fans out and every rebuild is a coordinated
#     cut-over, so both shards must end on the SAME non-zero version
#     with nothing pending and the replay must report zero errors.
#     The pass also scrapes /v1/metrics on the front-door and both
#     shards (every line must be exposition-format shaped) and forces
#     a trace through the stack via X-Compactroute-Trace, which must
#     be retrievable from the front-door by that ID afterwards.
#
# Mirrors the CI "serving smoke" step; run locally with `make smoke`.
set -eu

tmp=$(mktemp -d)
pid=""
pid2=""
pid3=""
cleanup() {
	# set -e is live inside traps: keep every command failure-proof so
	# the rm always runs.
	for p in "$pid" "$pid2" "$pid3"; do
		if [ -n "$p" ]; then kill -9 "$p" 2>/dev/null || true; fi
	done
	rm -rf "$tmp"
}
trap cleanup EXIT

addr=127.0.0.1:18347
go build -o "$tmp/routesim" ./cmd/routesim
go build -o "$tmp/routed" ./cmd/routed
go build -o "$tmp/loadgen" ./cmd/loadgen
go build -o "$tmp/graphgen" ./cmd/graphgen
go build -o "$tmp/routefront" ./cmd/routefront

wait_healthy() {
	ok=""
	for _ in $(seq 1 100); do
		if curl -sf "http://$addr/healthz" >/dev/null 2>&1; then
			ok=1
			break
		fi
		sleep 0.1
	done
	[ -n "$ok" ] || { echo "smoke: routed never became healthy" >&2; exit 1; }
}

# --- pass 1: persisted-file flow ---

"$tmp/routesim" -n 160 -k 2 -sfactor 0.5 -save "$tmp/net.crsc" >/dev/null

"$tmp/routed" -scheme "$tmp/net.crsc" -addr "$addr" &
pid=$!
wait_healthy

"$tmp/loadgen" -scheme "$tmp/net.crsc" -targets "http://$addr" \
	-pattern uniform,zipf,local -queries 3000 -concurrency 8 -hist 6

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM "$pid"
wait "$pid"
status=$?
pid=""
[ "$status" -eq 0 ] || { echo "smoke: routed exited $status on SIGTERM" >&2; exit 1; }
echo "smoke: persisted-file path OK (build -> serve -> replay -> drain)"

# --- pass 2: every registry kind by name ---

"$tmp/graphgen" -family gnp -n 90 -p 0.09 -seed 7 >"$tmp/topo.txt"
# Two node names straight from the topology file ("v <id> <name>").
src=$(awk '$1 == "v" && $2 == 0 { print $3 }' "$tmp/topo.txt")
dst=$(awk '$1 == "v" && $2 == 89 { print $3 }' "$tmp/topo.txt")
[ -n "$src" ] && [ -n "$dst" ] || { echo "smoke: no names in topo.txt" >&2; exit 1; }

for kind in paper fulltable apcover landmark tz; do
	"$tmp/routed" -scheme "$kind" -graph "$tmp/topo.txt" -k 2 -sfactor 0.5 -addr "$addr" &
	pid=$!
	wait_healthy

	health=$(curl -sf "http://$addr/healthz")
	case "$health" in
	*"\"kind\":\"$kind\""*) ;;
	*) echo "smoke: kind $kind healthz says: $health" >&2; exit 1 ;;
	esac

	body=$(curl -sf "http://$addr/route?src=$src&dst=$dst")
	case "$body" in
	*'"delivered":true'*) ;;
	*) echo "smoke: kind $kind route answered: $body" >&2; exit 1 ;;
	esac

	kill -TERM "$pid"
	wait "$pid" || { echo "smoke: routed ($kind) exited non-zero on SIGTERM" >&2; exit 1; }
	pid=""
	echo "smoke: kind $kind serves end-to-end"
done

# --- pass 3: dynamic churn (mutate -> rebuild -> hot swap) ---

"$tmp/graphgen" -family gnp -n 90 -p 0.09 -seed 7 \
	-mutations 60 -mutout "$tmp/churn.mut" >"$tmp/topo2.txt"

"$tmp/routed" -scheme fulltable -graph "$tmp/topo2.txt" -addr "$addr" &
pid=$!
wait_healthy

"$tmp/loadgen" -graph "$tmp/topo2.txt" -targets "http://$addr" -pattern uniform,zipf \
	-queries 2000 -concurrency 8 \
	-mutations "$tmp/churn.mut" -mutate-every 40 -rebuild-every 20

health=$(curl -sf "http://$addr/healthz")
case "$health" in
*'"dynamic":true'*) ;;
*) echo "smoke: churn healthz not dynamic: $health" >&2; exit 1 ;;
esac
case "$health" in
*'"pending":0'*) ;;
*) echo "smoke: churn left mutations pending: $health" >&2; exit 1 ;;
esac
case "$health" in
*'"version":0'*) echo "smoke: churn never swapped a version: $health" >&2; exit 1 ;;
*) ;;
esac

kill -TERM "$pid"
wait "$pid" || { echo "smoke: routed (churn) exited non-zero on SIGTERM" >&2; exit 1; }
pid=""
echo "smoke: dynamic churn path OK (mutate -> rebuild -> hot swap under replay)"

# --- pass 4: cluster flow (two shards + front-door, coordinated churn) ---

"$tmp/graphgen" -family gnp -n 90 -p 0.09 -seed 7 \
	-mutations 60 -mutout "$tmp/churn2.mut" >"$tmp/topo3.txt"

shard_a=127.0.0.1:18351
shard_b=127.0.0.1:18352
front=127.0.0.1:18353

# Both shards build from the same topology and seed, so they stage
# identical versions during the coordinated cut-overs.
"$tmp/routed" -scheme fulltable -graph "$tmp/topo3.txt" -addr "$shard_a" &
pid=$!
"$tmp/routed" -scheme fulltable -graph "$tmp/topo3.txt" -addr "$shard_b" &
pid2=$!
for s in "$shard_a" "$shard_b"; do
	ok=""
	for _ in $(seq 1 100); do
		if curl -sf "http://$s/v1/healthz" >/dev/null 2>&1; then ok=1; break; fi
		sleep 0.1
	done
	[ -n "$ok" ] || { echo "smoke: shard $s never became healthy" >&2; exit 1; }
done

"$tmp/routefront" -shards "http://$shard_a,http://$shard_b" -addr "$front" &
pid3=$!
ok=""
for _ in $(seq 1 100); do
	if curl -sf "http://$front/v1/healthz" >/dev/null 2>&1; then ok=1; break; fi
	sleep 0.1
done
[ -n "$ok" ] || { echo "smoke: routefront never became healthy" >&2; exit 1; }

# Churn replay through the front-door: mutations fan out to both
# shards, rebuilds are coordinated two-phase cut-overs, and the
# replay's errors column must stay zero for every pattern.
out=$("$tmp/loadgen" -graph "$tmp/topo3.txt" -targets "http://$front" -pattern uniform,zipf \
	-queries 2000 -concurrency 8 \
	-mutations "$tmp/churn2.mut" -mutate-every 40 -rebuild-every 20)
echo "$out"
echo "$out" | awk '$1 == "uniform" || $1 == "zipf" { if ($3 != 0) { bad = 1 } } END { exit bad }' \
	|| { echo "smoke: cluster replay reported failed routes" >&2; exit 1; }

# Both shards must serve the SAME non-zero version with no backlog.
ver_a=$(curl -sf "http://$shard_a/v1/healthz" | sed -n 's/.*"version":\([0-9]*\).*/\1/p')
ver_b=$(curl -sf "http://$shard_b/v1/healthz" | sed -n 's/.*"version":\([0-9]*\).*/\1/p')
[ -n "$ver_a" ] && [ "$ver_a" = "$ver_b" ] || {
	echo "smoke: cluster version skew after coordinated swaps: a=$ver_a b=$ver_b" >&2; exit 1; }
[ "$ver_a" != "0" ] || { echo "smoke: cluster never swapped a version" >&2; exit 1; }
for s in "$shard_a" "$shard_b"; do
	health=$(curl -sf "http://$s/v1/healthz")
	case "$health" in
	*'"pending":0'*) ;;
	*) echo "smoke: shard $s left mutations pending: $health" >&2; exit 1 ;;
	esac
done

# Metrics scrape: the front-door and both shards expose Prometheus
# text. Every non-comment line must be "name{labels} value" shaped
# (the strict in-process parser is pinned by tests; this guards the
# live endpoints), and the request counter family must be present.
for s in "$front" "$shard_a" "$shard_b"; do
	scrape=$(curl -sf "http://$s/v1/metrics")
	echo "$scrape" | awk '
		/^#/ { next }
		/^$/ { next }
		!/^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (-?[0-9.eE+-]+|[+-]Inf|NaN)$/ { bad = 1; print "bad metrics line: " $0 > "/dev/stderr" }
		END { exit bad }
	' || { echo "smoke: $s /v1/metrics is not exposition-format shaped" >&2; exit 1; }
	case "$scrape" in
	*compactroute_requests_total*) ;;
	*) echo "smoke: $s /v1/metrics missing compactroute_requests_total" >&2; exit 1 ;;
	esac
done
echo "smoke: metrics scrape OK (front-door + both shards)"

# Forced trace: a propagated ID must ride front-door -> shard and be
# retrievable from the front-door afterwards, spans included.
src3=$(awk '$1 == "v" && $2 == 0 { print $3 }' "$tmp/topo3.txt")
dst3=$(awk '$1 == "v" && $2 == 89 { print $3 }' "$tmp/topo3.txt")
curl -sf -H "X-Compactroute-Trace: smoketrace01" \
	"http://$front/v1/route?src=$src3&dst=$dst3" >/dev/null \
	|| { echo "smoke: forced-trace route failed" >&2; exit 1; }
trace=$(curl -sf "http://$front/v1/trace/smoketrace01") \
	|| { echo "smoke: forced trace not retrievable by ID" >&2; exit 1; }
case "$trace" in
*'"id":"smoketrace01"'*) ;;
*) echo "smoke: trace lookup answered: $trace" >&2; exit 1 ;;
esac
case "$trace" in
*'"spans":'*) ;;
*) echo "smoke: stored trace has no spans: $trace" >&2; exit 1 ;;
esac
echo "smoke: forced trace OK (propagated ID retrievable with spans)"

kill -TERM "$pid3"
wait "$pid3" || { echo "smoke: routefront exited non-zero on SIGTERM" >&2; exit 1; }
pid3=""
kill -TERM "$pid" "$pid2"
wait "$pid" || { echo "smoke: shard a exited non-zero on SIGTERM" >&2; exit 1; }
wait "$pid2" || { echo "smoke: shard b exited non-zero on SIGTERM" >&2; exit 1; }
pid=""
pid2=""
echo "smoke: cluster path OK (2 shards + front-door, coordinated cut-overs, zero failures)"

echo "smoke: serving path OK (file flow + all registry kinds + churn + cluster)"
