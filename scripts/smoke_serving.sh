#!/bin/sh
# End-to-end serving smoke, two passes:
#
#  1. The persisted-file flow: build a scheme with routesim -save,
#     serve the file with routed, replay three workload patterns over
#     HTTP with loadgen, then ask for a graceful shutdown and require
#     a clean exit.
#  2. The registry flow: for EVERY scheme kind the registry lists,
#     `routed -scheme <kind>` over a shared topology file must come up
#     healthy, identify its kind on /healthz, and deliver a route.
#  3. The dynamic churn flow: graphgen emits a topology plus a
#     mutation trace, routed serves the kind dynamically, and loadgen
#     interleaves mutations and rebuilds with the replay; the daemon
#     must end past version 0 with nothing pending and zero failures.
#
# Mirrors the CI "serving smoke" step; run locally with `make smoke`.
set -eu

tmp=$(mktemp -d)
pid=""
cleanup() {
	# set -e is live inside traps: keep every command failure-proof so
	# the rm always runs.
	if [ -n "$pid" ]; then kill -9 "$pid" 2>/dev/null || true; fi
	rm -rf "$tmp"
}
trap cleanup EXIT

addr=127.0.0.1:18347
go build -o "$tmp/routesim" ./cmd/routesim
go build -o "$tmp/routed" ./cmd/routed
go build -o "$tmp/loadgen" ./cmd/loadgen
go build -o "$tmp/graphgen" ./cmd/graphgen

wait_healthy() {
	ok=""
	for _ in $(seq 1 100); do
		if curl -sf "http://$addr/healthz" >/dev/null 2>&1; then
			ok=1
			break
		fi
		sleep 0.1
	done
	[ -n "$ok" ] || { echo "smoke: routed never became healthy" >&2; exit 1; }
}

# --- pass 1: persisted-file flow ---

"$tmp/routesim" -n 160 -k 2 -sfactor 0.5 -save "$tmp/net.crsc" >/dev/null

"$tmp/routed" -scheme "$tmp/net.crsc" -addr "$addr" &
pid=$!
wait_healthy

"$tmp/loadgen" -scheme "$tmp/net.crsc" -url "http://$addr" \
	-pattern uniform,zipf,local -queries 3000 -concurrency 8 -hist 6

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM "$pid"
wait "$pid"
status=$?
pid=""
[ "$status" -eq 0 ] || { echo "smoke: routed exited $status on SIGTERM" >&2; exit 1; }
echo "smoke: persisted-file path OK (build -> serve -> replay -> drain)"

# --- pass 2: every registry kind by name ---

"$tmp/graphgen" -family gnp -n 90 -p 0.09 -seed 7 >"$tmp/topo.txt"
# Two node names straight from the topology file ("v <id> <name>").
src=$(awk '$1 == "v" && $2 == 0 { print $3 }' "$tmp/topo.txt")
dst=$(awk '$1 == "v" && $2 == 89 { print $3 }' "$tmp/topo.txt")
[ -n "$src" ] && [ -n "$dst" ] || { echo "smoke: no names in topo.txt" >&2; exit 1; }

for kind in paper fulltable apcover landmark tz; do
	"$tmp/routed" -scheme "$kind" -graph "$tmp/topo.txt" -k 2 -sfactor 0.5 -addr "$addr" &
	pid=$!
	wait_healthy

	health=$(curl -sf "http://$addr/healthz")
	case "$health" in
	*"\"kind\":\"$kind\""*) ;;
	*) echo "smoke: kind $kind healthz says: $health" >&2; exit 1 ;;
	esac

	body=$(curl -sf "http://$addr/route?src=$src&dst=$dst")
	case "$body" in
	*'"delivered":true'*) ;;
	*) echo "smoke: kind $kind route answered: $body" >&2; exit 1 ;;
	esac

	kill -TERM "$pid"
	wait "$pid" || { echo "smoke: routed ($kind) exited non-zero on SIGTERM" >&2; exit 1; }
	pid=""
	echo "smoke: kind $kind serves end-to-end"
done

# --- pass 3: dynamic churn (mutate -> rebuild -> hot swap) ---

"$tmp/graphgen" -family gnp -n 90 -p 0.09 -seed 7 \
	-mutations 60 -mutout "$tmp/churn.mut" >"$tmp/topo2.txt"

"$tmp/routed" -scheme fulltable -graph "$tmp/topo2.txt" -addr "$addr" &
pid=$!
wait_healthy

"$tmp/loadgen" -graph "$tmp/topo2.txt" -url "http://$addr" -pattern uniform,zipf \
	-queries 2000 -concurrency 8 \
	-mutations "$tmp/churn.mut" -mutate-every 40 -rebuild-every 20

health=$(curl -sf "http://$addr/healthz")
case "$health" in
*'"dynamic":true'*) ;;
*) echo "smoke: churn healthz not dynamic: $health" >&2; exit 1 ;;
esac
case "$health" in
*'"pending":0'*) ;;
*) echo "smoke: churn left mutations pending: $health" >&2; exit 1 ;;
esac
case "$health" in
*'"version":0'*) echo "smoke: churn never swapped a version: $health" >&2; exit 1 ;;
*) ;;
esac

kill -TERM "$pid"
wait "$pid" || { echo "smoke: routed (churn) exited non-zero on SIGTERM" >&2; exit 1; }
pid=""
echo "smoke: dynamic churn path OK (mutate -> rebuild -> hot swap under replay)"

echo "smoke: serving path OK (file flow + all registry kinds + churn)"
