#!/bin/sh
# check_docs.sh — the CI docs gate. Fails when any package is missing
# its package-level doc comment (library packages need "// Package <name>",
# main packages a "// Command <name>" or demo-style header on the file
# carrying the package clause) or when go vet is unhappy. Run from the
# repo root: sh scripts/check_docs.sh
set -eu

fail=0

# Every package directory must contain at least one non-test .go file
# whose leading comment block documents the package.
for dir in $(go list -f '{{.Dir}}' ./...); do
	rel=${dir#"$(pwd)/"}
	[ "$rel" = "$dir" ] && rel=.
	found=0
	for f in "$dir"/*.go; do
		case "$f" in *_test.go) continue ;; esac
		[ -f "$f" ] || continue
		# Accept "// Package foo ..." anywhere in the file head (the
		# doc comment directly precedes the package clause), or the
		# command/demo convention for package main.
		if head -40 "$f" | grep -Eq '^// (Package|Command) [A-Za-z0-9_]'; then
			found=1
			break
		fi
		# Demo mains (examples/) document themselves as "// <Title> demo"
		# or similar prose. Go's attachment rule applies: the comment
		# line must sit *directly* above the package clause (a detached
		# license header with a blank line between does not count).
		if awk '/^package /{ exit } { prev = $0 } END { if (prev ~ /^\/\//) exit 0; exit 1 }' "$f" &&
			grep -q '^package main$' "$f"; then
			found=1
			break
		fi
	done
	if [ "$found" -eq 0 ]; then
		echo "check_docs: package $rel has no package doc comment" >&2
		fail=1
	fi
done

# README is a satellite of the same contract: the repo front door must
# exist and link the deep docs.
for doc in README.md DESIGN.md EXPERIMENTS.md; do
	if [ ! -s "$doc" ]; then
		echo "check_docs: $doc missing or empty" >&2
		fail=1
	fi
done
if ! grep -q 'DESIGN.md' README.md || ! grep -q 'EXPERIMENTS.md' README.md; then
	echo "check_docs: README.md must link DESIGN.md and EXPERIMENTS.md" >&2
	fail=1
fi

# Standalone runs drive vet too; pipelines that already ran vet as
# their own step (make ci, the CI workflow) skip the duplicate pass.
if [ "${CHECK_DOCS_NO_VET:-}" != "1" ]; then
	go vet ./... || fail=1
fi

if [ "$fail" -ne 0 ]; then
	echo "check_docs: FAILED" >&2
	exit 1
fi
echo "check_docs: ok"
