package compactroute

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pair is one batched query between internal node ids.
type Pair struct {
	Src, Dst NodeID
}

// RouteBatch routes every pair concurrently across the given number of
// workers (0 or negative means GOMAXPROCS) and returns the results in
// input order. A built scheme is immutable, so the fan-out needs no
// locking; on error the lowest-index failure is returned and the
// remaining work is abandoned.
func (s *Scheme) RouteBatch(pairs []Pair, workers int) ([]Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pairs) {
		workers = len(pairs)
	}
	results := make([]Result, len(pairs))
	if len(pairs) == 0 {
		return results, nil
	}
	var (
		next   atomic.Int64
		wg     sync.WaitGroup
		errMu  sync.Mutex
		errIdx = -1
		first  error
	)
	fail := func(i int, err error) {
		errMu.Lock()
		if errIdx < 0 || i < errIdx {
			errIdx, first = i, err
		}
		errMu.Unlock()
	}
	failed := func() bool {
		errMu.Lock()
		defer errMu.Unlock()
		return errIdx >= 0
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(pairs) || failed() {
					return
				}
				res, err := s.Route(pairs[i].Src, pairs[i].Dst)
				if err != nil {
					fail(i, err)
					return
				}
				results[i] = res
			}
		}()
	}
	wg.Wait()
	if errIdx >= 0 {
		return nil, first
	}
	return results, nil
}

// serialRowThreshold is the source-row count below which MeasureStretch
// runs the sweep serially: goroutine startup, work-stealing atomics, and
// the per-row merge outweigh the fan-out on small sweeps (the P1
// experiment measures 0.88× "speedup" at 128 rows on a single-core
// runner), and the serial sweep produces the identical distribution.
const serialRowThreshold = 256

// MeasureStretch routes every ordered pair (or a strided sample when
// sampleStride > 1) and returns the stretch distribution. It errors on
// the first non-delivered pair. Rows are fanned across GOMAXPROCS
// workers; each row accumulates into its own Stretch and the rows are
// merged in order, so the distribution is identical — sample order
// included — to a serial sweep. Sweeps shorter than serialRowThreshold
// rows run serially: at that size the fan-out costs more than it saves.
func (s *Scheme) MeasureStretch(sampleStride int) (*Stretch, error) {
	workers := runtime.GOMAXPROCS(0)
	if sampleStride < 1 {
		sampleStride = 1
	}
	if rows := (s.net.N() + sampleStride - 1) / sampleStride; rows < serialRowThreshold {
		workers = 1
	}
	return s.measureStretch(sampleStride, workers)
}

func (s *Scheme) measureStretch(sampleStride, workers int) (*Stretch, error) {
	if sampleStride < 1 {
		sampleStride = 1
	}
	s.net.EnsureMetric() // stretch is meaningless without d(u,v)
	n := s.net.N()
	rows := make([]int, 0, (n+sampleStride-1)/sampleStride)
	for u := 0; u < n; u += sampleStride {
		rows = append(rows, u)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(rows) {
		workers = len(rows)
	}
	if workers == 1 {
		// One worker means no interleaving to coordinate: skip the
		// goroutine machinery entirely and merge rows as they finish.
		var st Stretch
		for _, u := range rows {
			row, err := s.measureRow(u)
			if err != nil {
				return nil, err
			}
			st.Merge(row)
		}
		return &st, nil
	}
	perRow := make([]*Stretch, len(rows))
	var (
		next atomic.Int64
		wg   sync.WaitGroup
		mu   sync.Mutex
		fail error
	)
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return fail != nil
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(rows) || failed() {
					return
				}
				st, err := s.measureRow(rows[i])
				if err != nil {
					mu.Lock()
					if fail == nil {
						fail = err
					}
					mu.Unlock()
					return
				}
				perRow[i] = st
			}
		}()
	}
	wg.Wait()
	if fail != nil {
		return nil, fail
	}
	var st Stretch
	for _, row := range perRow {
		st.Merge(row)
	}
	return &st, nil
}

// measureRow routes u against every other node.
func (s *Scheme) measureRow(u int) (*Stretch, error) {
	var st Stretch
	for v := 0; v < s.net.N(); v++ {
		if u == v {
			continue
		}
		res, err := s.Route(NodeID(u), NodeID(v))
		if err != nil {
			return nil, err
		}
		if !res.Delivered {
			return nil, fmt.Errorf("compactroute: %s %d→%d: %w", s.Name(), u, v, ErrNotDelivered)
		}
		st.Add(res.Cost, res.ShortestCost)
	}
	return &st, nil
}
