package compactroute

import (
	"compactroute/internal/gen"
	"compactroute/internal/xrand"
)

// Weighting draws edge weights for the generators.
type Weighting = gen.Weighting

// UnitWeights gives every edge weight 1.
func UnitWeights() Weighting { return gen.Unit() }

// UniformWeights draws weights uniformly from [lo, hi).
func UniformWeights(lo, hi float64) Weighting { return gen.Uniform(lo, hi) }

// PowerOfTwoWeights draws weights 2^j, j uniform in {0..maxExp}; sums
// stay exact in float64, which matters for huge-aspect-ratio runs.
func PowerOfTwoWeights(maxExp int) Weighting { return gen.PowerOfTwo(maxExp) }

// RandomNetwork returns a connected Erdős–Rényi-style network.
func RandomNetwork(seed uint64, n int, p float64, w Weighting) *Network {
	return WrapGraph(gen.Gnp(seed, n, p, w))
}

// GridNetwork returns a rows×cols mesh.
func GridNetwork(seed uint64, rows, cols int, w Weighting) *Network {
	return WrapGraph(gen.Grid(seed, rows, cols, w))
}

// RingNetwork returns an n-cycle.
func RingNetwork(seed uint64, n int, w Weighting) *Network {
	return WrapGraph(gen.Ring(seed, n, w))
}

// GeometricNetwork returns a random geometric graph in the unit
// square with the given connection radius.
func GeometricNetwork(seed uint64, n int, radius float64) *Network {
	return WrapGraph(gen.Geometric(seed, n, radius))
}

// ScaleFreeNetwork returns a preferential-attachment network with
// heavy-tailed degrees.
func ScaleFreeNetwork(seed uint64, n, m int, w Weighting) *Network {
	return WrapGraph(gen.PrefAttach(seed, n, m, w))
}

// AspectLadderNetwork returns the scale-freeness stress workload: a
// fixed topology whose edge weights span topExp binary orders of
// magnitude, so the aspect ratio Δ ≈ 2^topExp while n stays fixed.
func AspectLadderNetwork(seed uint64, branching, depth, topExp int) *Network {
	return WrapGraph(gen.AspectLadder(seed, branching, depth, topExp))
}

// HashName is the repository's standard name scrambler, exposed so
// applications can mint uncorrelated node names.
func HashName(seed, x uint64) uint64 { return xrand.Hash64(seed, x) }
