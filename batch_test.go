package compactroute

import (
	"strings"
	"testing"
)

func buildBatchScheme(t *testing.T, seed uint64, n int) *Scheme {
	t.Helper()
	net := RandomNetwork(seed, n, 0.07, UniformWeights(1, 6))
	s, err := NewScheme(net, Options{K: 2, Seed: seed + 1, SFactor: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// serialStretch is the reference implementation the parallel
// MeasureStretch must match: the plain row-major double loop.
func serialStretch(t *testing.T, s *Scheme, stride int) *Stretch {
	t.Helper()
	s.Network().EnsureMetric()
	var st Stretch
	n := s.Network().N()
	for u := 0; u < n; u += stride {
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			res, err := s.Route(NodeID(u), NodeID(v))
			if err != nil {
				t.Fatal(err)
			}
			if !res.Delivered {
				t.Fatalf("%d→%d not delivered", u, v)
			}
			st.Add(res.Cost, res.ShortestCost)
		}
	}
	return &st
}

// TestMeasureStretchParallelMatchesSerial: the fan-out must return a
// distribution identical to the serial path — not just statistically,
// but bit-for-bit, because rows are merged in row order.
func TestMeasureStretchParallelMatchesSerial(t *testing.T) {
	for _, seed := range []uint64{3, 11, 29} {
		s := buildBatchScheme(t, seed, 70)
		for _, stride := range []int{1, 3} {
			want := serialStretch(t, s, stride)
			for _, workers := range []int{1, 2, 7, 64} {
				got, err := s.measureStretch(stride, workers)
				if err != nil {
					t.Fatal(err)
				}
				if got.N() != want.N() {
					t.Fatalf("seed %d stride %d workers %d: N %d vs %d", seed, stride, workers, got.N(), want.N())
				}
				if got.Mean() != want.Mean() || got.Max() != want.Max() {
					t.Fatalf("seed %d stride %d workers %d: mean/max diverge: %v/%v vs %v/%v",
						seed, stride, workers, got.Mean(), got.Max(), want.Mean(), want.Max())
				}
				for _, p := range []float64{25, 50, 90, 99, 100} {
					if got.Percentile(p) != want.Percentile(p) {
						t.Fatalf("seed %d stride %d workers %d: p%v diverges", seed, stride, workers, p)
					}
				}
			}
		}
	}
}

func TestRouteBatchMatchesRoute(t *testing.T) {
	s := buildBatchScheme(t, 17, 60)
	n := s.Network().N()
	var pairs []Pair
	for u := 0; u < n; u += 3 {
		for v := 0; v < n; v += 5 {
			if u != v {
				pairs = append(pairs, Pair{NodeID(u), NodeID(v)})
			}
		}
	}
	got, err := s.RouteBatch(pairs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pairs) {
		t.Fatalf("got %d results for %d pairs", len(got), len(pairs))
	}
	for i, p := range pairs {
		want, err := s.Route(p.Src, p.Dst)
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != want {
			t.Fatalf("pair %d (%d→%d): %+v vs %+v", i, p.Src, p.Dst, got[i], want)
		}
	}
}

func TestRouteBatchEmptyAndError(t *testing.T) {
	s := buildBatchScheme(t, 23, 40)
	res, err := s.RouteBatch(nil, 4)
	if err != nil || len(res) != 0 {
		t.Fatalf("empty batch: %v %v", res, err)
	}
	pairs := []Pair{{0, 1}, {2, NodeID(s.Network().N() + 5)}, {1, 0}}
	if _, err := s.RouteBatch(pairs, 2); err == nil {
		t.Fatal("invalid endpoint did not error")
	} else if !strings.Contains(err.Error(), "invalid endpoint") {
		t.Fatalf("unexpected error: %v", err)
	}
}
