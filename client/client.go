// Package client is the Go client for the routed/routefront HTTP
// API. It always speaks the versioned /v1 surface and mirrors the
// server's typed error taxonomy: any non-2xx answer comes back as an
// *Error carrying the HTTP status and the server's message, so callers
// distinguish a name they invented (422) from retryable back-pressure
// (503) from a coordination conflict (409) without parsing bodies.
//
//	c := client.New("http://localhost:8347")
//	res, err := c.RouteByName(ctx, src, dst)
//	var apiErr *client.Error
//	if errors.As(err, &apiErr) && apiErr.Status == 503 { retry() }
//
// The same client drives a single shard or a front-door — the
// endpoints are identical; the front-door simply owns more names.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"time"

	"compactroute"
	"compactroute/internal/obs"
)

// Error is a non-2xx API answer: the HTTP status plus the server's
// error message. Transport failures (connection refused, timeouts)
// are NOT Errors — they surface as the underlying error, which is how
// callers tell "the server said no" from "there is no server".
type Error struct {
	Status  int
	Message string
}

func (e *Error) Error() string {
	return fmt.Sprintf("api: %d %s: %s", e.Status, http.StatusText(e.Status), e.Message)
}

// IsStatus reports whether err is an API *Error with the given status.
func IsStatus(err error, status int) bool {
	var apiErr *Error
	return errors.As(err, &apiErr) && apiErr.Status == status
}

// Client talks to one routed shard or one routefront front-door.
// The zero value is not usable; construct with New. HTTP may be
// replaced before first use (httptest clients, custom timeouts).
type Client struct {
	// BaseURL is the server root, without a trailing slash.
	BaseURL string
	// HTTP performs the requests. New installs a transport tuned for
	// many small keep-alive requests to one host.
	HTTP *http.Client
}

// New returns a client for the server at baseURL (scheme://host:port;
// any trailing slash is trimmed).
func New(baseURL string) *Client {
	return &Client{
		BaseURL: strings.TrimRight(baseURL, "/"),
		HTTP: &http.Client{
			Transport: &http.Transport{
				DialContext:         (&net.Dialer{Timeout: 5 * time.Second}).DialContext,
				MaxIdleConns:        256,
				MaxIdleConnsPerHost: 256,
				IdleConnTimeout:     time.Minute,
			},
		},
	}
}

// Route is a routing answer. Version is the topology version the
// route was computed on (absent for static schemes).
type Route struct {
	Delivered    bool    `json:"delivered"`
	Cost         float64 `json:"cost"`
	Hops         int     `json:"hops"`
	HeaderBits   int64   `json:"headerBits"`
	ShortestCost float64 `json:"shortestCost,omitempty"`
	Stretch      float64 `json:"stretch,omitempty"`
	Version      *uint64 `json:"version,omitempty"`
}

// Resolve is a name-resolution answer: existence of both names plus
// the shortest-path distance between them, without walking a route.
type Resolve struct {
	SrcKnown     bool    `json:"srcKnown"`
	DstKnown     bool    `json:"dstKnown"`
	MetricKnown  bool    `json:"metricKnown"`
	ShortestCost float64 `json:"shortestCost,omitempty"`
	Version      *uint64 `json:"version,omitempty"`
}

// Health is a /v1/healthz answer. The dynamic fields are zero for
// static servers.
type Health struct {
	Status    string `json:"status"`
	Scheme    string `json:"scheme"`
	Kind      string `json:"kind"`
	Nodes     int    `json:"nodes"`
	Edges     int    `json:"edges"`
	Metric    bool   `json:"metric"`
	Dynamic   bool   `json:"dynamic"`
	Version   uint64 `json:"version"`
	Pending   uint64 `json:"pending"`
	Mutations uint64 `json:"mutations"`
	Swaps     uint64 `json:"swaps"`
}

// MutateReply reports an accepted mutation batch.
type MutateReply struct {
	Applied int    `json:"applied"`
	Seq     uint64 `json:"seq"`
	Pending uint64 `json:"pending"`
}

// RebuildReply reports an asynchronously scheduled rebuild (202).
type RebuildReply struct {
	Status  string `json:"status"`
	Pending uint64 `json:"pending"`
}

// RouteByName routes between two external names.
func (c *Client) RouteByName(ctx context.Context, src, dst uint64) (Route, error) {
	var out Route
	err := c.do(ctx, http.MethodGet, fmt.Sprintf("/v1/route?src=%d&dst=%d", src, dst), nil, &out)
	return out, err
}

// Resolve reports name existence and the shortest-path distance
// between two external names on the server's current topology.
func (c *Client) Resolve(ctx context.Context, src, dst uint64) (Resolve, error) {
	var out Resolve
	err := c.do(ctx, http.MethodGet, fmt.Sprintf("/v1/resolve?src=%d&dst=%d", src, dst), nil, &out)
	return out, err
}

// Mutate appends topology mutations atomically (all or none).
func (c *Client) Mutate(ctx context.Context, muts ...compactroute.Mutation) (MutateReply, error) {
	var out MutateReply
	err := c.do(ctx, http.MethodPost, "/v1/mutate", muts, &out)
	return out, err
}

// Rebuild schedules a background rebuild and returns immediately.
func (c *Client) Rebuild(ctx context.Context) (RebuildReply, error) {
	var out RebuildReply
	err := c.do(ctx, http.MethodPost, "/v1/rebuild", nil, &out)
	return out, err
}

// RebuildWait rebuilds and blocks until the new version serves.
func (c *Client) RebuildWait(ctx context.Context) (compactroute.VersionInfo, error) {
	var out compactroute.VersionInfo
	err := c.do(ctx, http.MethodPost, "/v1/rebuild?wait=1", nil, &out)
	return out, err
}

// Stage runs the first half of a two-phase rebuild: the server builds
// the next version (returned here) without swapping it in.
func (c *Client) Stage(ctx context.Context) (compactroute.VersionInfo, error) {
	var out compactroute.VersionInfo
	err := c.do(ctx, http.MethodPost, "/v1/rebuild?stage=1", nil, &out)
	return out, err
}

// SwapTo commits a staged version by ID. A version the server has not
// staged (and is not already serving) answers *Error status 409.
func (c *Client) SwapTo(ctx context.Context, id uint64) (compactroute.VersionInfo, error) {
	var out compactroute.VersionInfo
	err := c.do(ctx, http.MethodPost, "/v1/swap", map[string]uint64{"version": id}, &out)
	return out, err
}

// Healthz fetches liveness, scheme identity, and the live version.
func (c *Client) Healthz(ctx context.Context) (Health, error) {
	var out Health
	err := c.do(ctx, http.MethodGet, "/v1/healthz", nil, &out)
	return out, err
}

// Stats fetches the serving counters as raw JSON — the shape differs
// between a shard (pool + dynamic block) and a front-door (cluster
// aggregate), so the client leaves interpretation to the caller.
func (c *Client) Stats(ctx context.Context) (json.RawMessage, error) {
	var out json.RawMessage
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &out)
	return out, err
}

// Trace fetches one stored trace by request ID as raw JSON. A 404
// (ring evicted it, or the request was never traced there) surfaces
// as an *Error with Status 404.
func (c *Client) Trace(ctx context.Context, id string) (json.RawMessage, error) {
	var out json.RawMessage
	err := c.do(ctx, http.MethodGet, "/v1/trace/"+url.PathEscape(id), nil, &out)
	return out, err
}

// do performs one JSON round-trip: 2xx decodes into out, anything
// else becomes an *Error with the server's message.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("client: encoding %s body: %w", path, err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return fmt.Errorf("client: %s: %w", path, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// Propagate an active trace so a front-door-sampled request is
	// traced under the same ID on every shard it touches.
	if tr := obs.FromContext(ctx); tr != nil {
		req.Header.Set(obs.Header, tr.ID())
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return fmt.Errorf("client: reading %s response: %w", path, err)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var e struct {
			Error string `json:"error"`
		}
		msg := strings.TrimSpace(string(raw))
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			msg = e.Error
		}
		return &Error{Status: resp.StatusCode, Message: msg}
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return fmt.Errorf("client: decoding %s response: %w", path, err)
	}
	return nil
}
