package client_test

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"compactroute"
	"compactroute/client"
	"compactroute/internal/graph"
	"compactroute/internal/server"
)

func bootShard(t *testing.T) (*client.Client, *server.Server) {
	t.Helper()
	srv, err := server.New(server.Config{
		Scheme: "fulltable", N: 60, K: 2, Seed: 11, SFactor: 0.5,
		Workers: 2, CacheSize: 64, Logf: func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start(t.Context())
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return client.New(ts.URL), srv
}

func TestClientRoundTrips(t *testing.T) {
	c, srv := bootShard(t)
	ctx := context.Background()
	g := srv.Scheme().Network().Graph()
	src, dst := g.Name(0), g.Name(1)

	res, err := c.RouteByName(ctx, src, dst)
	if err != nil || !res.Delivered {
		t.Fatalf("RouteByName: %+v, %v", res, err)
	}
	if res.Version == nil || *res.Version != 0 {
		t.Fatalf("RouteByName version %v, want 0", res.Version)
	}
	if res.ShortestCost <= 0 || res.Stretch < 1 {
		t.Fatalf("RouteByName without stretch (built schemes carry the metric): %+v", res)
	}

	rv, err := c.Resolve(ctx, src, dst)
	if err != nil || !rv.SrcKnown || !rv.DstKnown || rv.ShortestCost != res.ShortestCost {
		t.Fatalf("Resolve: %+v, %v (route shortest %v)", rv, err, res.ShortestCost)
	}

	h, err := c.Healthz(ctx)
	if err != nil || h.Status != "ok" || h.Kind != "fulltable" || !h.Dynamic || h.Version != 0 {
		t.Fatalf("Healthz: %+v, %v", h, err)
	}

	// Mutate → two-phase stage/swap, entirely through the client.
	g2 := srv.Scheme().Network().Graph()
	var neighbor uint64
	g2.Neighbors(0, func(e graph.Edge) bool {
		neighbor = g2.Name(e.To)
		return false
	})
	mr, err := c.Mutate(ctx, compactroute.MutSetWeight(src, neighbor, 2), compactroute.MutAddEdge(src, g2.Name(compactroute.NodeID(g2.N()-1)), 9))
	if err != nil || mr.Applied != 2 || mr.Pending != 2 {
		t.Fatalf("Mutate: %+v, %v", mr, err)
	}
	staged, err := c.Stage(ctx)
	if err != nil || staged.ID != 1 {
		t.Fatalf("Stage: %+v, %v", staged, err)
	}
	if h, _ := c.Healthz(ctx); h.Version != 0 {
		t.Fatalf("stage published: serving %d", h.Version)
	}
	if _, err := c.SwapTo(ctx, 99); !client.IsStatus(err, http.StatusConflict) {
		t.Fatalf("SwapTo(99) = %v, want 409", err)
	}
	v, err := c.SwapTo(ctx, staged.ID)
	if err != nil || v.ID != 1 {
		t.Fatalf("SwapTo: %+v, %v", v, err)
	}

	// Plain rebuild paths.
	rr, err := c.Rebuild(ctx)
	if err != nil || rr.Status == "" {
		t.Fatalf("Rebuild: %+v, %v", rr, err)
	}
	wv, err := c.RebuildWait(ctx)
	if err != nil || wv.ID != 1 { // nothing pending: serving version back
		t.Fatalf("RebuildWait: %+v, %v", wv, err)
	}

	st, err := c.Stats(ctx)
	if err != nil || !bytes.Contains(st, []byte(`"Requests"`)) || !bytes.Contains(st, []byte(`"dynamic"`)) {
		t.Fatalf("Stats: %s, %v", st, err)
	}
}

func TestClientErrorTaxonomy(t *testing.T) {
	c, _ := bootShard(t)
	ctx := context.Background()

	// A name the caller invented: API error 422, visible via errors.As.
	_, err := c.RouteByName(ctx, 0xFFFFFFFF, 1)
	var apiErr *client.Error
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusUnprocessableEntity {
		t.Fatalf("unknown name: %v, want *Error 422", err)
	}
	if apiErr.Message == "" || apiErr.Error() == "" {
		t.Fatalf("API error without message: %+v", apiErr)
	}
	if !client.IsStatus(err, http.StatusUnprocessableEntity) || client.IsStatus(err, http.StatusConflict) {
		t.Fatalf("IsStatus misclassified %v", err)
	}

	// An invalid mutation batch: 422, nothing applied.
	if _, err := c.Mutate(ctx, compactroute.MutAddEdge(0xdeaddead, 0xdeadbeef, 1)); !client.IsStatus(err, 422) {
		t.Fatalf("invalid mutation: %v, want 422", err)
	}

	// A server that is not there: transport error, NOT an *Error.
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	gone := client.New(dead.URL)
	if _, err := gone.Healthz(ctx); err == nil || errors.As(err, &apiErr) {
		t.Fatalf("dead server: %v, want transport error", err)
	}
}
