package compactroute

import (
	"sync"
	"testing"
)

// TestParallelBuildDeterminism: the parallel builders must produce the
// same scheme a sequential build would (all randomness is derived from
// per-unit seeds, never from scheduling).
func TestParallelBuildDeterminism(t *testing.T) {
	net := RandomNetwork(9, 100, 0.06, UniformWeights(1, 6))
	a, err := NewScheme(net, Options{K: 3, Seed: 5, SFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewScheme(net, Options{K: 3, Seed: 5, SFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.MaxTableBits() != b.MaxTableBits() {
		t.Fatalf("parallel builds diverge: %d vs %d", a.MaxTableBits(), b.MaxTableBits())
	}
	for u := NodeID(0); int(u) < net.N(); u += 7 {
		for v := NodeID(0); int(v) < net.N(); v += 5 {
			ra, err1 := a.Route(u, v)
			rb, err2 := b.Route(u, v)
			if err1 != nil || err2 != nil || ra.Cost != rb.Cost || ra.Hops != rb.Hops {
				t.Fatalf("routes diverge at %d→%d", u, v)
			}
		}
	}
}

// TestConcurrentRouting: a built scheme is immutable, so any number of
// goroutines may route through it simultaneously. Run with -race.
func TestConcurrentRouting(t *testing.T) {
	net := RandomNetwork(10, 80, 0.08, UniformWeights(1, 5))
	s, err := NewScheme(net, Options{K: 2, Seed: 3, SFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	wg.Add(goroutines)
	for gi := 0; gi < goroutines; gi++ {
		go func(gi int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				src := NodeID((gi*31 + i) % net.N())
				dst := NodeID((gi*17 + i*13) % net.N())
				res, err := s.Route(src, dst)
				if err != nil {
					errs[gi] = err
					return
				}
				if !res.Delivered {
					errs[gi] = err
					return
				}
			}
		}(gi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
